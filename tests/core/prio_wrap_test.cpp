// Documents the DESIGN.md §1.1 deviation: the arXiv pseudocode does not
// increment SPrio when the root immediately forwards a priority token it
// cannot hold (Alg. 1 lines 38-39), although the symmetric ResT and PushT
// paths do count (lines 14-16, 30-32). Without the increment, a surplus
// priority token that circulates while the root's own priority token is
// pinned (root = perpetual requester) is invisible to the census and is
// never purged.
#include <gtest/gtest.h>

#include "api/system.hpp"
#include "proto/messages.hpp"

namespace klex {
namespace {

/// Builds the pinning scenario: n=2 line, l=k=1; the member (node 1)
/// enters its CS and never leaves, holding the only resource token, so
/// the root's request stays pending and the root holds the priority token
/// indefinitely. Then a surplus priority token is injected.
struct PinnedScenario {
  explicit PinnedScenario(bool omit_wrap_count) {
    SystemConfig config;
    config.tree = tree::line(2);
    config.k = 1;
    config.l = 1;
    config.seed = 909;
    config.omit_prio_wrap_count = omit_wrap_count;
    system = std::make_unique<System>(config);

    // Boot to the legitimate population.
    EXPECT_NE(system->run_until_stabilized(2'000'000), sim::kTimeInfinity);

    // Member grabs the token and camps in its CS.
    system->request(1, 1);
    system->run_until(system->engine().now() + 200'000);
    EXPECT_EQ(system->state_of(1), proto::AppState::kIn);

    // Root requests and therefore pins the priority token when it passes.
    system->request(0, 1);
    for (int round = 0; round < 400; ++round) {
      system->run_until(system->engine().now() + 500);
      if (system->node(0).snapshot().holds_priority) break;
    }
    EXPECT_TRUE(system->node(0).snapshot().holds_priority);

    // Surplus priority token enters the ring.
    system->engine().inject_message(1, 0, proto::make_priority());
  }

  std::unique_ptr<System> system;
};

TEST(PrioWrap, FixedProtocolPurgesSurplusPriorityToken) {
  PinnedScenario scenario(/*omit_wrap_count=*/false);
  System& system = *scenario.system;
  ASSERT_EQ(system.census().priority(), 2);

  // With the wrap count in place the next census sees 2 priority tokens
  // and resets; the population returns to exactly one.
  bool purged = false;
  for (int round = 0; round < 2000 && !purged; ++round) {
    system.run_until(system.engine().now() + 1000);
    purged = system.census().priority() == 1;
  }
  EXPECT_TRUE(purged) << "surplus priority token was never purged";
}

TEST(PrioWrap, LiteralPseudocodeNeverSeesTheSurplus) {
  PinnedScenario scenario(/*omit_wrap_count=*/true);
  System& system = *scenario.system;
  // The literal accounting is blind twice over: (1) it may already have
  // minted a spurious extra priority token in the circulation where the
  // original token transitioned from free to pinned-at-root (the token is
  // counted neither by SPrio nor by the traversal's PPr in that window),
  // and (2) it cannot see the surplus we injected. So at this point the
  // network carries at least 2 priority tokens.
  int at_injection = system.census().priority();
  ASSERT_GE(at_injection, 2);

  // Long horizon: surplus tokens keep circulating, the root keeps
  // forwarding them uncounted, and the census keeps reporting one
  // priority token -- no reset ever fires and the surplus survives.
  system.run_until(system.engine().now() + 8'000'000);
  EXPECT_GE(system.census().priority(), 2)
      << "literal pseudocode unexpectedly purged the surplus";
}

TEST(PrioWrap, SurplusDetectionWorksWithoutPinnedRequest) {
  // Without a pinned root request both variants converge: every arriving
  // priority token is held-and-released through the counted path. The
  // deviation only matters in the pinned case above.
  for (bool omit : {false, true}) {
    SystemConfig config;
    config.tree = tree::line(2);
    config.k = 1;
    config.l = 1;
    config.seed = 910;
    config.omit_prio_wrap_count = omit;
    System system(config);
    ASSERT_NE(system.run_until_stabilized(2'000'000), sim::kTimeInfinity);
    system.engine().inject_message(1, 0, proto::make_priority());
    bool purged = false;
    for (int round = 0; round < 2000 && !purged; ++round) {
      system.run_until(system.engine().now() + 1000);
      purged = system.census().priority() == 1;
    }
    EXPECT_TRUE(purged) << "omit=" << omit;
  }
}

}  // namespace
}  // namespace klex
