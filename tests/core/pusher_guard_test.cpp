// Documents the DESIGN.md §1.1 deviation: the arXiv pseudocode's pusher
// guard (Alg. 1 line 21 / Alg. 2 line 17) reads (Prio ≠ ⊥) ∧ ..., which
// contradicts the prose ("a process that holds the priority token does
// not release its reserved resource tokens"). Under the literal guard a
// requester that does NOT hold the priority token never drops its
// reserved tokens, so the pusher cannot break the Figure 2 deadlock.
#include <gtest/gtest.h>

#include "api/system.hpp"

namespace klex {
namespace {

SystemConfig figure2_config(bool literal_guard, std::uint64_t seed) {
  SystemConfig config;
  config.tree = tree::figure1_tree();
  config.k = 3;
  config.l = 5;
  config.features = proto::Features::with_pusher();
  config.literal_pusher_guard = literal_guard;
  config.seed = seed;
  return config;
}

/// Runs the Figure 2 oversubscription scenario with releases, returning
/// how many of the four requesters were ever served within the horizon.
int serve_figure2(System& system, int rounds) {
  system.request(1, 3);
  system.request(2, 2);
  system.request(3, 2);
  system.request(4, 2);
  std::vector<bool> served(static_cast<std::size_t>(system.n()), false);
  for (int round = 0; round < rounds; ++round) {
    system.run_until(system.engine().now() + 200);
    for (proto::NodeId v = 1; v <= 4; ++v) {
      if (system.state_of(v) == proto::AppState::kIn) {
        served[static_cast<std::size_t>(v)] = true;
        system.release(v);
      }
    }
    if (served[1] && served[2] && served[3] && served[4]) break;
  }
  int count = 0;
  for (proto::NodeId v = 1; v <= 4; ++v) {
    if (served[static_cast<std::size_t>(v)]) ++count;
  }
  return count;
}

TEST(PusherGuard, ProseGuardBreaksTheDeadlock) {
  for (std::uint64_t seed : {101ull, 102ull, 103ull}) {
    System system(figure2_config(/*literal_guard=*/false, seed));
    EXPECT_EQ(serve_figure2(system, 4000), 4) << "seed " << seed;
  }
}

TEST(PusherGuard, LiteralGuardWedgesFigure2) {
  // With the pusher-only rung nobody ever holds the priority token
  // (there is none), so the literal guard (Prio ≠ ⊥ ∧ ...) never releases
  // anything: the pusher degenerates to a no-op and the Figure 2 token
  // absorption persists exactly as in the naive rung -- all 5 tokens end
  // up reserved at unsatisfiable requesters and never move again.
  for (std::uint64_t seed : {101ull, 102ull, 103ull}) {
    System system(figure2_config(/*literal_guard=*/true, seed));
    system.request(1, 3);
    system.request(2, 2);
    system.request(3, 2);
    system.request(4, 2);
    system.run_until(400'000);

    proto::TokenCensus census = system.census();
    EXPECT_EQ(census.free_resource, 0) << "seed " << seed;
    EXPECT_EQ(census.reserved_resource, 5) << "seed " << seed;
    int stuck = 0;
    for (proto::NodeId v = 0; v < system.n(); ++v) {
      if (system.state_of(v) == proto::AppState::kReq) ++stuck;
    }
    EXPECT_GT(stuck, 0) << "seed " << seed;

    // No resource token moves over a long late window (while the pusher
    // keeps circulating uselessly).
    std::uint64_t delivered_before = system.engine().messages_delivered();
    proto::TokenCensus before = system.census();
    system.run_until(system.engine().now() + 400'000);
    EXPECT_GT(system.engine().messages_delivered(), delivered_before)
        << "pusher should still circulate";
    proto::TokenCensus after = system.census();
    EXPECT_EQ(after.free_resource, 0) << "seed " << seed;
    EXPECT_EQ(before.reserved_resource, after.reserved_resource);
  }
}

TEST(PusherGuard, LiteralGuardMakesPusherANoOpForTokenMotion) {
  // Under the literal guard, pusher arrivals at token-holding
  // non-priority processes leave every RSet untouched: once the
  // oversubscribed requesters (7 > 5 units) have absorbed all tokens,
  // the reservation pattern is frozen forever.
  SystemConfig config = figure2_config(/*literal_guard=*/true, 104);
  System system(config);
  system.request(1, 3);
  system.request(3, 2);
  system.request(4, 2);
  system.run_until(400'000);
  ASSERT_EQ(system.census().free_resource, 0);

  std::vector<int> before;
  for (proto::NodeId v = 0; v < system.n(); ++v) {
    before.push_back(system.node(v).snapshot().rset_size);
  }
  // Many more pusher circulations change nothing.
  system.run_until(system.engine().now() + 400'000);
  for (proto::NodeId v = 0; v < system.n(); ++v) {
    EXPECT_EQ(system.node(v).snapshot().rset_size,
              before[static_cast<std::size_t>(v)])
        << "node " << v << " reservation moved";
  }
}

}  // namespace
}  // namespace klex
