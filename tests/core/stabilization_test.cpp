// Theorem 1: self-stabilization. From arbitrary configurations (random
// in-domain process memory + up to CMAX arbitrary messages per channel)
// the system converges to exactly ℓ resource tokens, one pusher, one
// priority token, and thereafter serves requests safely and fairly.
#include <gtest/gtest.h>

#include <tuple>

#include "api/system.hpp"
#include "api/workload_driver.hpp"
#include "proto/workload.hpp"
#include "verify/convergence.hpp"
#include "verify/safety_monitor.hpp"

namespace klex {
namespace {

struct Shape {
  const char* name;
  tree::Tree (*make)();
};

tree::Tree make_fig1() { return tree::figure1_tree(); }
tree::Tree make_line() { return tree::line(7); }
tree::Tree make_star() { return tree::star(7); }
tree::Tree make_balanced() { return tree::balanced(2, 3); }

using StabilizationParam = std::tuple<int, std::uint64_t>;

class StabilizationTest
    : public ::testing::TestWithParam<StabilizationParam> {};

TEST_P(StabilizationTest, ConvergesFromArbitraryConfiguration) {
  static const Shape kShapes[] = {
      {"figure1", &make_fig1},
      {"line7", &make_line},
      {"star7", &make_star},
      {"balanced", &make_balanced},
  };
  const Shape& shape = kShapes[std::get<0>(GetParam())];
  std::uint64_t seed = std::get<1>(GetParam());

  SystemConfig config;
  config.tree = shape.make();
  config.k = 2;
  config.l = 3;
  config.cmax = 3;
  config.seed = seed;
  System system(config);

  // Let it boot normally first, then smash it.
  ASSERT_NE(system.run_until_stabilized(4'000'000), sim::kTimeInfinity)
      << shape.name;

  support::Rng fault_rng(seed ^ 0xF417);
  system.inject_transient_fault(fault_rng);

  sim::SimTime recovered =
      system.run_until_stabilized(system.engine().now() + 30'000'000);
  ASSERT_NE(recovered, sim::kTimeInfinity)
      << shape.name << " seed " << seed << " never re-stabilized";

  // The census must hold over an extended suffix.
  verify::ConvergenceTracker tracker(config.l);
  for (int poll = 0; poll < 200; ++poll) {
    system.run_until(system.engine().now() + 512);
    tracker.poll(system.census(), system.engine().now());
  }
  EXPECT_TRUE(tracker.converged()) << shape.name;
  EXPECT_EQ(tracker.incorrect_polls(), 0u)
      << shape.name << ": census regressed after stabilization";
}

TEST_P(StabilizationTest, ServesRequestsAfterRecovery) {
  static const Shape kShapes[] = {
      {"figure1", &make_fig1},
      {"line7", &make_line},
      {"star7", &make_star},
      {"balanced", &make_balanced},
  };
  const Shape& shape = kShapes[std::get<0>(GetParam())];
  std::uint64_t seed = std::get<1>(GetParam());

  SystemConfig config;
  config.tree = shape.make();
  config.k = 2;
  config.l = 3;
  config.seed = seed * 31 + 7;
  System system(config);

  verify::SafetyMonitor safety(system.n(), config.k, config.l);
  system.add_listener(&safety);

  proto::NodeBehavior behavior;
  behavior.think = proto::Dist::exponential(64);
  behavior.cs_duration = proto::Dist::exponential(32);
  behavior.need = proto::Dist::uniform(1, 2);
  WorkloadDriver driver(system.engine(), system.clients(),
                               proto::uniform_behaviors(system.n(), behavior),
                               support::Rng(seed ^ 0xAB));
  driver.begin();

  system.run_until(500'000);
  support::Rng fault_rng(seed ^ 0x5AFE);
  system.inject_transient_fault(fault_rng);
  driver.resync();
  safety.forget();  // corruption invalidated who-holds-what

  sim::SimTime recovered =
      system.run_until_stabilized(system.engine().now() + 30'000'000);
  ASSERT_NE(recovered, sim::kTimeInfinity) << shape.name;

  // Let corruption-era grants drain (safety is an *eventual* property; a
  // grant decided just before the census settled may land just after it).
  system.run_until(system.engine().now() + 500'000);
  std::size_t violations_after_settle = safety.violations().size();
  std::int64_t grants_at_recovery = driver.total_grants();

  // Post-recovery probe: requests keep being granted, no new violations.
  system.run_until(system.engine().now() + 2'000'000);
  EXPECT_GT(driver.total_grants(), grants_at_recovery + 5)
      << shape.name << ": no progress after recovery";
  EXPECT_EQ(safety.violations().size(), violations_after_settle)
      << shape.name << ": safety violated after stabilization";
}

std::string stabilization_param_name(
    const ::testing::TestParamInfo<StabilizationParam>& info) {
  static const char* kNames[] = {"figure1", "line7", "star7", "balanced"};
  return std::string(kNames[std::get<0>(info.param)]) + "_seed" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndSeeds, StabilizationTest,
    ::testing::Combine(::testing::Range(0, 4),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{2},
                                         std::uint64_t{3})),
    stabilization_param_name);

TEST(Stabilization, RepeatedFaultsAlwaysRecover) {
  SystemConfig config;
  config.tree = tree::balanced(2, 2);
  config.k = 2;
  config.l = 4;
  config.seed = 1234;
  System system(config);
  support::Rng fault_rng(77);

  for (int fault = 0; fault < 5; ++fault) {
    ASSERT_NE(system.run_until_stabilized(system.engine().now() + 30'000'000),
              sim::kTimeInfinity)
        << "fault round " << fault;
    system.inject_transient_fault(fault_rng);
  }
  ASSERT_NE(system.run_until_stabilized(system.engine().now() + 30'000'000),
            sim::kTimeInfinity);
  EXPECT_TRUE(system.token_counts_correct());
}

}  // namespace
}  // namespace klex
