// Chaos-campaign fuzzer tests (exp/chaos_fuzz.hpp).
//
// The acceptance contract under test: a seeded campaign is a pure
// function of its config, it finds real failures (safety violations or
// non-stabilization under adversarial channels), and the ddmin
// minimizer emits a strictly-no-larger reproducer that re-runs to the
// SAME failure class -- verified here by replaying the minimized spec
// through the stock runner, exactly as an external harness would.
#include "exp/chaos_fuzz.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "exp/runner.hpp"

namespace klex::exp {
namespace {

/// The bounded campaign used across these tests: seed 5 is pinned
/// because its early cases reproduce safety violations quickly (the CI
/// smoke step uses the same seed for the same reason).
ChaosFuzzConfig small_campaign(int cases) {
  ChaosFuzzConfig config;
  config.cases = cases;
  config.seed = 5;
  config.stall_threshold = 25'000;
  return config;
}

TEST(ChaosFuzz, CaseSamplingIsDeterministicInSeedAndIndex) {
  ChaosFuzzConfig config = small_campaign(8);
  for (int index : {0, 3, 7}) {
    ScenarioSpec a = make_chaos_case(config, index);
    ScenarioSpec b = make_chaos_case(config, index);
    ASSERT_EQ(a.fault_plan.events.size(), 1u);
    const FaultEvent& ea = a.fault_plan.events.front();
    const FaultEvent& eb = b.fault_plan.events.front();
    EXPECT_EQ(a.topologies.front().name(), b.topologies.front().name());
    EXPECT_EQ(a.base_seed, b.base_seed);
    EXPECT_EQ(ea.at, eb.at);
    EXPECT_EQ(ea.duration, eb.duration);
    EXPECT_EQ(ea.chaos.drop_p, eb.chaos.drop_p);
    EXPECT_EQ(ea.chaos.dup_p, eb.chaos.dup_p);
    EXPECT_EQ(ea.chaos.reorder_p, eb.chaos.reorder_p);
    EXPECT_EQ(ea.chaos.jitter, eb.chaos.jitter);
  }
  // Different indices draw different cases (the per-case split streams).
  ScenarioSpec first = make_chaos_case(config, 0);
  ScenarioSpec second = make_chaos_case(config, 1);
  EXPECT_NE(first.base_seed, second.base_seed);
}

TEST(ChaosFuzz, SampledBurstsKeepTheDuplicationExponentBounded) {
  // The sampler must never emit a population bomb: dup_p may exceed
  // drop_p only by ~(budget / burst hops) -- see make_chaos_case.
  ChaosFuzzConfig config = small_campaign(64);
  for (int index = 0; index < config.cases; ++index) {
    ScenarioSpec spec = make_chaos_case(config, index);
    const FaultEvent& event = spec.fault_plan.events.front();
    const double hops = static_cast<double>(event.duration) / 8.0;
    const double excess = event.chaos.dup_p - event.chaos.drop_p;
    EXPECT_LE(excess * hops, 3.0 + 1e-9)
        << "case " << index << " can amplify the message population "
        << "exponentially (dup_p=" << event.chaos.dup_p
        << ", drop_p=" << event.chaos.drop_p
        << ", duration=" << event.duration << ")";
    // And every burst stays token-destructive or token-duplicating.
    EXPECT_TRUE(event.chaos.drop_p >= 0.05 || event.chaos.dup_p > 0.0)
        << "case " << index;
  }
}

TEST(ChaosFuzz, CampaignFindsAndMinimizesARealFailure) {
  ChaosFuzzConfig config = small_campaign(3);
  ChaosFuzzReport report = run_chaos_fuzz(config);
  EXPECT_EQ(report.cases_run, 3);
  ASSERT_FALSE(report.failures.empty())
      << "the pinned campaign seed must reproduce at least one failure";

  const ChaosFailure& failure = report.failures.front();
  EXPECT_FALSE(failure.reason.empty());
  EXPECT_TRUE(failure.minimized_verified);

  const FaultEvent& original = failure.spec.fault_plan.events.front();
  const FaultEvent& minimized = failure.minimized.fault_plan.events.front();
  // The minimizer only shrinks: every dimension is <= the original.
  EXPECT_LE(minimized.duration, original.duration);
  EXPECT_LE(minimized.chaos.drop_p, original.chaos.drop_p);
  EXPECT_LE(minimized.chaos.dup_p, original.chaos.dup_p);
  EXPECT_LE(minimized.chaos.reorder_p, original.chaos.reorder_p);
  EXPECT_LE(minimized.chaos.jitter, original.chaos.jitter);
  EXPECT_GT(failure.shrink_steps, 0)
      << "the sampled case left no room to shrink at all (unexpected for "
         "the pinned seed)";
  EXPECT_GE(failure.shrink_runs, failure.shrink_steps);

  // The emitted reproducer replays to the SAME failure class through the
  // stock runner -- the external-harness path, end to end.
  std::vector<RunPoint> points = ExperimentRunner::expand(failure.minimized);
  ASSERT_EQ(points.size(), 1u);
  RunResult replay = ExperimentRunner::run_point(failure.minimized,
                                                 points.front());
  EXPECT_EQ(classify_chaos_failure(replay), failure.reason);
}

TEST(ChaosFuzz, ReportAndReproducerSerializeAsJson) {
  ChaosFuzzConfig config = small_campaign(1);
  config.minimize = false;
  ChaosFuzzReport report = run_chaos_fuzz(config);

  std::ostringstream summary;
  write_chaos_fuzz_json(summary, config, report);
  EXPECT_NE(summary.str().find("\"cases_run\""), std::string::npos);
  EXPECT_NE(summary.str().find("\"failing_cases\""), std::string::npos);

  ScenarioSpec spec = make_chaos_case(config, 0);
  std::ostringstream repro;
  write_scenario_json(repro, spec);
  EXPECT_NE(repro.str().find("\"chaos_burst\""), std::string::npos);
  EXPECT_NE(repro.str().find("\"fault_plan\""), std::string::npos);
  EXPECT_NE(repro.str().find("\"stall_threshold\""), std::string::npos);
}

TEST(ChaosFuzz, PassingRunClassifiesClean) {
  RunResult result;
  EXPECT_EQ(classify_chaos_failure(result), "");  // no fault phase at all
  result.fault_events.push_back({});
  result.recovered = true;
  result.fault_phase_violations = 0;
  EXPECT_EQ(classify_chaos_failure(result), "");
  result.fault_phase_violations = 2;
  EXPECT_EQ(classify_chaos_failure(result), "safety");
  result.fault_phase_violations = 0;
  result.recovered = false;
  EXPECT_EQ(classify_chaos_failure(result), "no_recovery");
}

}  // namespace
}  // namespace klex::exp
