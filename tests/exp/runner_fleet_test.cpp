// The experiment grid's fleet axis: expansion fan-out, shared-engine
// fleet runs with per-tenant slices, the separate-engines batching
// baseline, fault isolation in the artifact, and the JSON shape.
#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "exp/runner.hpp"

namespace klex::exp {
namespace {

ScenarioSpec fleet_scenario() {
  ScenarioSpec spec;
  spec.name = "test_fleet";
  spec.topologies = {TopologySpec::tree_line(6)};
  spec.kl = {{1, 2}};
  spec.fleet = {3};
  spec.workload.base.think = proto::Dist::exponential(64);
  spec.workload.base.cs_duration = proto::Dist::exponential(32);
  spec.warmup = 10'000;
  spec.horizon = 300'000;
  spec.seeds = 1;
  spec.base_seed = 71;
  return spec;
}

TEST(FleetGrid, ExpandFansOutSharedAndSeparateModes) {
  ScenarioSpec spec = fleet_scenario();
  spec.fleet = {1, 4};
  spec.seeds = 2;

  // Without the baseline: one point per fleet entry per seed.
  std::vector<RunPoint> points = ExperimentRunner::expand(spec);
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].fleet, 1);
  EXPECT_FALSE(points[0].fleet_separate);
  EXPECT_EQ(points[2].fleet, 4);
  EXPECT_EQ(points[3].seed, 72u);

  // With it: every fleet entry > 1 doubles into shared + separate.
  spec.fleet_compare_separate = true;
  points = ExperimentRunner::expand(spec);
  ASSERT_EQ(points.size(), 6u);
  EXPECT_FALSE(points[2].fleet_separate);  // fleet=4 shared, seeds 71/72
  EXPECT_FALSE(points[3].fleet_separate);
  EXPECT_TRUE(points[4].fleet_separate);  // fleet=4 separate
  EXPECT_TRUE(points[5].fleet_separate);
  EXPECT_EQ(points[4].fleet, 4);
}

TEST(FleetGrid, SharedRunCarriesPerTenantSlices) {
  ScenarioSpec spec = fleet_scenario();
  RunPoint point = ExperimentRunner::expand(spec)[0];
  RunResult result = ExperimentRunner::run_point(spec, point);

  EXPECT_EQ(result.fleet, 3);
  EXPECT_EQ(result.fleet_mode, "shared");
  EXPECT_EQ(result.n, 3 * 6);
  EXPECT_TRUE(result.stabilized);
  EXPECT_TRUE(result.safety_ok);
  ASSERT_EQ(result.tenants.size(), 3u);
  std::int64_t sliced_grants = 0;
  for (int t = 0; t < 3; ++t) {
    const TenantResult& cell = result.tenants[static_cast<std::size_t>(t)];
    EXPECT_EQ(cell.tenant, t);
    EXPECT_EQ(cell.n, 6);
    EXPECT_TRUE(cell.stabilized);
    EXPECT_GT(cell.grants, 0);
    EXPECT_GT(cell.events_executed, 0u);
    EXPECT_EQ(cell.recovery_events, 0);
    EXPECT_TRUE(cell.correct_at_end);
    sliced_grants += cell.grants;
  }
  // The tenant slices partition the fleet-wide totals.
  EXPECT_EQ(sliced_grants, result.grants);
}

TEST(FleetGrid, FaultPhaseTargetsTenantZeroAlone) {
  ScenarioSpec spec = fleet_scenario();
  spec.features = {proto::Features::full().with_epoch_cut()};
  spec.fault = ScenarioSpec::FaultKind::kTransient;
  RunPoint point = ExperimentRunner::expand(spec)[0];
  RunResult result = ExperimentRunner::run_point(spec, point);

  EXPECT_TRUE(result.fault_injected);
  EXPECT_TRUE(result.recovered);
  ASSERT_EQ(result.tenants.size(), 3u);
  // Tenant 0 took the fault (and, on the epoch-cut rung, the one drain);
  // the isolation observable is that tenants 1 and 2 never recovered
  // because they never faulted.
  EXPECT_EQ(result.tenants[0].recovery_events, 1);
  EXPECT_EQ(result.tenants[1].recovery_events, 0);
  EXPECT_EQ(result.tenants[2].recovery_events, 0);
  for (const TenantResult& cell : result.tenants) {
    EXPECT_TRUE(cell.correct_at_end);
  }
}

TEST(FleetGrid, SeparateBaselineReplaysTheSameTenants) {
  ScenarioSpec spec = fleet_scenario();
  spec.fleet_compare_separate = true;
  std::vector<RunPoint> points = ExperimentRunner::expand(spec);
  ASSERT_EQ(points.size(), 2u);
  RunResult shared = ExperimentRunner::run_point(spec, points[0]);
  RunResult separate = ExperimentRunner::run_point(spec, points[1]);

  EXPECT_EQ(separate.fleet_mode, "separate");
  EXPECT_EQ(separate.n, shared.n);
  ASSERT_EQ(separate.tenants.size(), shared.tenants.size());
  // Tenant t of the shared fleet replays the standalone system seeded
  // seed + t (the differential anchor), so the per-tenant workload
  // results of the two modes agree exactly.
  for (std::size_t t = 0; t < shared.tenants.size(); ++t) {
    EXPECT_EQ(separate.tenants[t].grants, shared.tenants[t].grants)
        << "tenant " << t;
    EXPECT_EQ(separate.tenants[t].requests, shared.tenants[t].requests)
        << "tenant " << t;
    EXPECT_EQ(separate.tenants[t].stabilization_time,
              shared.tenants[t].stabilization_time)
        << "tenant " << t;
  }
  EXPECT_EQ(separate.grants, shared.grants);

  // The two modes land in distinct aggregate cells.
  std::vector<Aggregate> cells =
      ExperimentRunner::aggregate({shared, separate});
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].fleet, 3);
  EXPECT_EQ(cells[0].fleet_mode, "shared");
  EXPECT_EQ(cells[1].fleet_mode, "separate");
}

TEST(FleetGrid, JsonCarriesFleetAxisOnlyForFleetScenarios) {
  ScenarioSpec spec = fleet_scenario();
  spec.fleet_compare_separate = true;
  ExperimentRunner runner(1);
  std::vector<RunResult> results = runner.run(spec);
  std::ostringstream out;
  write_json(out, spec, results);
  std::string json = out.str();
  EXPECT_NE(json.find("\"fleet\": ["), std::string::npos);
  EXPECT_NE(json.find("\"fleet_compare_separate\": true"),
            std::string::npos);
  EXPECT_NE(json.find("\"fleet_mode\": \"shared\""), std::string::npos);
  EXPECT_NE(json.find("\"fleet_mode\": \"separate\""), std::string::npos);
  EXPECT_NE(json.find("\"tenants\": ["), std::string::npos);
  EXPECT_NE(json.find("\"recovery_events\": 0"), std::string::npos);

  // A plain scenario's artifact carries no fleet axis at all: pre-fleet
  // baselines stay byte-identical.
  ScenarioSpec plain = fleet_scenario();
  plain.name = "test_plain";
  plain.fleet = {1};
  plain.fleet_compare_separate = false;
  std::vector<RunResult> plain_results = runner.run(plain);
  std::ostringstream plain_out;
  write_json(plain_out, plain, plain_results);
  EXPECT_EQ(plain_out.str().find("\"fleet"), std::string::npos);
  EXPECT_EQ(plain_out.str().find("\"tenants"), std::string::npos);
}

}  // namespace
}  // namespace klex::exp
