// ExperimentRunner: grid expansion, parallel execution determinism,
// aggregation, and the JSON artifact shape.
#include <gtest/gtest.h>

#include <sstream>

#include "exp/runner.hpp"

namespace klex::exp {
namespace {

ScenarioSpec small_scenario() {
  ScenarioSpec spec;
  spec.name = "test_scenario";
  spec.topologies = {TopologySpec::tree_line(5), TopologySpec::ring(5)};
  spec.kl = {{1, 2}};
  spec.workload.base.think = proto::Dist::exponential(64);
  spec.workload.base.cs_duration = proto::Dist::exponential(32);
  spec.warmup = 10'000;
  spec.horizon = 300'000;
  spec.seeds = 2;
  spec.base_seed = 41;
  return spec;
}

TEST(TopologySpec, NamesAndNodeCounts) {
  EXPECT_EQ(TopologySpec::tree_line(16).name(), "tree:line(n=16)");
  EXPECT_EQ(TopologySpec::tree_line(16).node_count(), 16);
  EXPECT_EQ(TopologySpec::tree_balanced(2, 3).node_count(), 15);
  EXPECT_EQ(TopologySpec::graph_grid(4, 4).name(), "graph:grid(4x4)");
  EXPECT_EQ(TopologySpec::graph_grid(4, 4).node_count(), 16);
  EXPECT_EQ(TopologySpec::tree_caterpillar(6, 2).node_count(), 18);
  EXPECT_EQ(TopologySpec::ring(9).name(), "ring(n=9)");
}

TEST(ExperimentRunner, ExpandsFullGrid) {
  ScenarioSpec spec = small_scenario();
  spec.kl = {{1, 2}, {2, 3}};
  std::vector<RunPoint> points = ExperimentRunner::expand(spec);
  ASSERT_EQ(points.size(), 2u * 2u * 2u);  // topologies x kl x seeds
  // Seed-major inner loop.
  EXPECT_EQ(points[0].seed, 41u);
  EXPECT_EQ(points[1].seed, 42u);
  EXPECT_EQ(points[0].k, 1);
  EXPECT_EQ(points[2].k, 2);
  EXPECT_EQ(points[2].l, 3);
}

TEST(ExperimentRunner, RunPointServesWorkload) {
  ScenarioSpec spec = small_scenario();
  RunPoint point = ExperimentRunner::expand(spec)[0];
  RunResult result = ExperimentRunner::run_point(spec, point);
  EXPECT_EQ(result.topology, "tree:line(n=5)");
  EXPECT_EQ(result.n, 5);
  EXPECT_TRUE(result.stabilized);
  EXPECT_TRUE(result.safety_ok);
  EXPECT_GT(result.grants, 0);
  EXPECT_GT(result.events_executed, 0u);
  EXPECT_GT(result.events_per_sec, 0.0);
}

TEST(ExperimentRunner, ParallelMatchesSerialBitForBit) {
  ScenarioSpec spec = small_scenario();
  std::vector<RunResult> serial = ExperimentRunner(1).run(spec);
  std::vector<RunResult> parallel = ExperimentRunner(4).run(spec);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    // Everything but the wall-clock fields is deterministic.
    EXPECT_EQ(serial[i].topology, parallel[i].topology);
    EXPECT_EQ(serial[i].seed, parallel[i].seed);
    EXPECT_EQ(serial[i].stabilization_time, parallel[i].stabilization_time);
    EXPECT_EQ(serial[i].grants, parallel[i].grants);
    EXPECT_EQ(serial[i].requests, parallel[i].requests);
    EXPECT_EQ(serial[i].events_executed, parallel[i].events_executed);
    EXPECT_EQ(serial[i].mean_wait_entries, parallel[i].mean_wait_entries);
    EXPECT_EQ(serial[i].control_messages, parallel[i].control_messages);
  }
}

TEST(ExperimentRunner, FaultPhaseRecovers) {
  ScenarioSpec spec = small_scenario();
  spec.topologies = {TopologySpec::tree_line(5)};
  spec.seeds = 1;
  spec.fault = ScenarioSpec::FaultKind::kTransient;
  std::vector<RunResult> results = ExperimentRunner(1).run(spec);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].fault_injected);
  EXPECT_TRUE(results[0].recovered);
  EXPECT_GT(results[0].recovery_time, 0u);
  // Elapsed-since-fault, not an absolute timestamp: the fault fires after
  // stabilization + warmup + horizon (> 300k ticks), while recovery on a
  // 5-node line takes a few thousand.
  EXPECT_LT(results[0].recovery_time, 300'000u);
}

TEST(ExperimentRunner, ChannelWipeFaultRecovers) {
  ScenarioSpec spec = small_scenario();
  spec.topologies = {TopologySpec::tree_line(5)};
  spec.seeds = 1;
  spec.fault = ScenarioSpec::FaultKind::kChannelWipe;
  std::vector<RunResult> results = ExperimentRunner(1).run(spec);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].fault_injected);
  EXPECT_TRUE(results[0].recovered);
  // Deficit-only: the root timeout restarts circulation, the mint repairs
  // the population; recovery must not need a reset-length drain.
  EXPECT_GT(results[0].recovery_time, 0u);
  EXPECT_LT(results[0].recovery_time, 300'000u);
}

TEST(ExperimentRunner, AggregatesAcrossSeeds) {
  ScenarioSpec spec = small_scenario();
  std::vector<RunResult> results = ExperimentRunner(2).run(spec);
  std::vector<Aggregate> cells = ExperimentRunner::aggregate(results);
  ASSERT_EQ(cells.size(), 2u);  // one per topology (single kl pair)
  for (const Aggregate& cell : cells) {
    EXPECT_EQ(cell.runs, 2);
    EXPECT_EQ(cell.stabilized_runs, 2);
    EXPECT_EQ(cell.safe_runs, 2);
    EXPECT_GT(cell.mean_grants_per_mtick, 0.0);
  }
}

TEST(ExperimentRunner, JsonArtifactIsWellFormed) {
  ScenarioSpec spec = small_scenario();
  spec.topologies = {TopologySpec::tree_line(5)};
  spec.seeds = 1;
  std::vector<RunResult> results = ExperimentRunner(1).run(spec);
  std::ostringstream out;
  write_json(out, spec, results);
  std::string text = out.str();
  EXPECT_NE(text.find("\"scenario\": \"test_scenario\""), std::string::npos);
  EXPECT_NE(text.find("\"runs\": ["), std::string::npos);
  EXPECT_NE(text.find("\"events_per_sec\""), std::string::npos);
  EXPECT_NE(text.find("\"callback_slots_created\""), std::string::npos);
  EXPECT_NE(text.find("\"aggregates\""), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  EXPECT_EQ(std::count(text.begin(), text.end(), '{'),
            std::count(text.begin(), text.end(), '}'));
  EXPECT_EQ(std::count(text.begin(), text.end(), '['),
            std::count(text.begin(), text.end(), ']'));
}

TEST(ExperimentRunner, GraphTopologyRunsThroughRunner) {
  ScenarioSpec spec = small_scenario();
  spec.topologies = {TopologySpec::graph_grid(3, 3)};
  spec.seeds = 1;
  std::vector<RunResult> results = ExperimentRunner(1).run(spec);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].n, 9);
  EXPECT_TRUE(results[0].stabilized);
  EXPECT_GT(results[0].grants, 0);
}

}  // namespace
}  // namespace klex::exp
