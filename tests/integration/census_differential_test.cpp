// Differential test for the incremental token census: after every event
// batch, the O(1) CensusTracker (engine per-type counters + participant
// deltas) must agree field-for-field with the full-walk take_census
// oracle -- on all three topology families, through workload churn,
// transient-fault injection (corrupt + clear_channels + garbage preload)
// and bare clear_channels() epochs.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "exp/scenario.hpp"
#include "proto/census.hpp"
#include "api/workload_driver.hpp"
#include "proto/workload.hpp"

namespace klex {
namespace {

void expect_census_equal(const proto::TokenCensus& tracked,
                         const proto::TokenCensus& oracle,
                         const std::string& where) {
  EXPECT_EQ(tracked.free_resource, oracle.free_resource) << where;
  EXPECT_EQ(tracked.reserved_resource, oracle.reserved_resource) << where;
  EXPECT_EQ(tracked.pusher, oracle.pusher) << where;
  EXPECT_EQ(tracked.free_priority, oracle.free_priority) << where;
  EXPECT_EQ(tracked.held_priority, oracle.held_priority) << where;
  EXPECT_EQ(tracked.control, oracle.control) << where;
}

struct DifferentialParam {
  const char* name;
  exp::TopologySpec topology;
};

class CensusDifferentialTest
    : public ::testing::TestWithParam<DifferentialParam> {};

TEST_P(CensusDifferentialTest, TrackerMatchesOracleAfterEveryBatch) {
  const DifferentialParam& param = GetParam();
  const int k = 2;
  const int l = 4;
  std::unique_ptr<SystemBase> system =
      exp::make_system(param.topology, k, l, proto::Features::full(),
                       /*cmax=*/3, sim::DelayModel{}, /*seed=*/42);

  // Workload churn so RSet / Prio deltas actually fire.
  proto::NodeBehavior behavior;
  behavior.think = proto::Dist::exponential(48);
  behavior.cs_duration = proto::Dist::exponential(24);
  behavior.need = proto::Dist::uniform(1, k);
  WorkloadDriver driver(system->engine(), system->clients(),
                               proto::uniform_behaviors(system->n(), behavior),
                               support::Rng(7));
  driver.begin();

  support::Rng fault_rng(0xD1FFu);
  const int batches = 400;
  for (int batch = 0; batch < batches; ++batch) {
    system->engine().run_events(257);
    std::string where = std::string(param.name) + " batch " +
                        std::to_string(batch);
    expect_census_equal(system->census(), system->census_oracle(), where);
    EXPECT_EQ(system->token_counts_correct(),
              system->census_oracle().correct(l))
        << where;

    // Perturbations between batches: full transient faults (corrupt +
    // clear + garbage), bare channel-clear epochs, and surplus tokens.
    if (batch % 37 == 13) {
      system->inject_transient_fault(fault_rng);
      driver.resync();
    } else if (batch % 53 == 29) {
      system->engine().clear_channels();
    } else if (batch % 41 == 11) {
      system->engine().inject_message(0, 0, proto::make_resource());
    } else if (batch % 61 == 31) {
      sim::Message junk;
      junk.type = 999;  // not a protocol message: both sides must ignore it
      system->engine().inject_message(0, 0, junk);
    }
  }

  // The perturbation schedule must leave time to re-stabilize; the final
  // confirmed state has to be ledger-exact too.
  ASSERT_NE(system->run_until_stabilized(
                system->engine().now() + 80'000'000),
            sim::kTimeInfinity)
      << param.name;
  expect_census_equal(system->census(), system->census_oracle(), "final");
  EXPECT_TRUE(system->token_counts_correct());
}

std::string differential_param_name(
    const ::testing::TestParamInfo<DifferentialParam>& info) {
  return info.param.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologies, CensusDifferentialTest,
    ::testing::Values(
        DifferentialParam{"tree", exp::TopologySpec::tree_random(24, 3)},
        DifferentialParam{"ring", exp::TopologySpec::ring(16)},
        DifferentialParam{"graph",
                          exp::TopologySpec::graph_random(16, 6, 5)}),
    differential_param_name);

}  // namespace
}  // namespace klex
