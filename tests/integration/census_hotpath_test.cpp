// The incremental-census hot path must be walk-free and allocation-free:
// a steady-state run_until_stabilized may not take a single full census
// walk (EngineStats::in_flight_walks) nor construct a single callback
// slot. The full-walk oracle stays available -- and is counted -- for
// debugging and differential tests.
#include <gtest/gtest.h>

#include "api/system.hpp"

namespace klex {
namespace {

SystemConfig hotpath_config() {
  SystemConfig config;
  config.tree = tree::balanced(2, 3);
  config.k = 2;
  config.l = 4;
  config.seed = 99;
  return config;
}

TEST(CensusHotPath, StabilizationDetectionDoesZeroWalks) {
  System system(hotpath_config());
  // Cold start through bootstrap: detection itself must never walk.
  ASSERT_NE(system.run_until_stabilized(4'000'000), sim::kTimeInfinity);
  sim::EngineStats stats = system.engine().stats();
  EXPECT_EQ(stats.in_flight_walks, 0u);
  EXPECT_EQ(stats.callback_slots_created, 0u);  // no workload, no slots
  EXPECT_GT(stats.events_executed, 0u);
}

TEST(CensusHotPath, SteadyStateRedetectionDoesZeroWalksOrSlots) {
  System system(hotpath_config());
  ASSERT_NE(system.run_until_stabilized(4'000'000), sim::kTimeInfinity);
  system.run_until(system.engine().now() + 500'000);  // deep steady state

  sim::EngineStats before = system.engine().stats();
  // Re-detection over an already-correct census: confirms after the
  // window, still at O(1) per event.
  ASSERT_NE(system.run_until_stabilized(system.engine().now() + 1'000'000),
            sim::kTimeInfinity);
  sim::EngineStats after = system.engine().stats();
  EXPECT_EQ(after.in_flight_walks, before.in_flight_walks);
  EXPECT_EQ(after.callback_slots_created, before.callback_slots_created);
  EXPECT_EQ(after.callbacks_scheduled, before.callbacks_scheduled);
}

TEST(CensusHotPath, OracleWalksAreCountedButOptIn) {
  System system(hotpath_config());
  ASSERT_NE(system.run_until_stabilized(4'000'000), sim::kTimeInfinity);
  sim::EngineStats before = system.engine().stats();

  proto::TokenCensus tracked = system.census();      // O(1), no walk
  EXPECT_EQ(system.engine().stats().in_flight_walks, before.in_flight_walks);

  proto::TokenCensus oracle = system.census_oracle();  // full walk, counted
  EXPECT_EQ(system.engine().stats().in_flight_walks,
            before.in_flight_walks + 1);
  EXPECT_EQ(tracked.resource(), oracle.resource());
  EXPECT_EQ(tracked.pusher, oracle.pusher);
  EXPECT_EQ(tracked.priority(), oracle.priority());
}

}  // namespace
}  // namespace klex
