// Live topology churn: online spanning-tree repair + graceful client
// degradation.
//
// Pins the robustness contract of GraphSystem::apply_topology_fault and
// the client surface around it:
//   * a lease on a crashed / partitioned node is revoked through
//     on_revoked exactly once -- never silently lost, never double-fired;
//   * acquires on unreachable nodes are denied with the retryable
//     kUnreachable reason instead of touching the protocol;
//   * the incremental census stays exact through detach / rebind /
//     re-mint, and the system re-stabilizes after every repair;
//   * restoring the topology reattaches nodes and they grant again;
//   * the WorkloadDriver keeps making progress across churn (retry with
//     capped backoff + resync), including on reattached nodes.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "api/builder.hpp"
#include "api/graph_system.hpp"
#include "exp/scenario.hpp"
#include "proto/census.hpp"
#include "stree/graph.hpp"

namespace klex {
namespace {

std::unique_ptr<SystemBase> make_live_grid(int w, int h, std::uint64_t seed) {
  return SystemBuilder()
      .graph(stree::grid(w, h))
      .kl(2, 4)
      .cmax(3)
      .features(proto::Features::full().with_epoch_cut())
      .seed(seed)
      .live_topology()
      .build();
}

FaultEvent crash_nodes(std::vector<int> nodes, bool restore = false) {
  FaultEvent event;
  event.kind = FaultKind::kNodeCrash;
  event.nodes = std::move(nodes);
  event.restore = restore;
  return event;
}

FaultEvent churn_links_random(int count, bool restore = false) {
  FaultEvent event;
  event.kind = FaultKind::kLinkChurn;
  event.count = count;
  event.restore = restore;
  return event;
}

void expect_census_exact(SystemBase& system) {
  proto::TokenCensus tracked = system.census();
  proto::TokenCensus oracle = system.census_oracle();
  EXPECT_EQ(tracked.free_resource, oracle.free_resource);
  EXPECT_EQ(tracked.reserved_resource, oracle.reserved_resource);
  EXPECT_EQ(tracked.pusher, oracle.pusher);
  EXPECT_EQ(tracked.free_priority, oracle.free_priority);
  EXPECT_EQ(tracked.held_priority, oracle.held_priority);
}

TEST(Churn, TopologyFaultRefusedOffLiveMode) {
  auto tree_system = SystemBuilder()
                         .topology(exp::TopologySpec::tree_line(8))
                         .kl(1, 2)
                         .build();
  support::Rng rng(1);
  EXPECT_THROW(tree_system->apply_topology_fault(crash_nodes({3}), rng),
               std::logic_error);

  // A non-live graph system refuses too: the physical wiring is absent.
  auto static_graph = SystemBuilder()
                          .topology(exp::TopologySpec::graph_grid(4, 4))
                          .kl(1, 2)
                          .build();
  EXPECT_THROW(static_graph->apply_topology_fault(crash_nodes({3}), rng),
               std::logic_error);

  // And live mode on a tree / ring is rejected at build time.
  EXPECT_THROW(SystemBuilder()
                   .topology(exp::TopologySpec::tree_line(8))
                   .live_topology()
                   .build(),
               std::logic_error);
  EXPECT_THROW(SystemBuilder()
                   .topology(exp::TopologySpec::ring(8))
                   .live_topology()
                   .build(),
               std::logic_error);
}

TEST(Churn, LiveBootMatchesStaticOverlayParents) {
  // Live wiring changes the engine's channel layout but not the overlay:
  // the spanning tree extracted at boot is identical to the static one.
  auto live = make_live_grid(4, 4, 11);
  auto snap = SystemBuilder()
                  .graph(stree::grid(4, 4))
                  .kl(2, 4)
                  .cmax(3)
                  .features(proto::Features::full().with_epoch_cut())
                  .seed(11)
                  .build();
  auto* live_graph = dynamic_cast<GraphSystem*>(live.get());
  auto* snap_graph = dynamic_cast<GraphSystem*>(snap.get());
  ASSERT_NE(live_graph, nullptr);
  ASSERT_NE(snap_graph, nullptr);
  EXPECT_TRUE(live_graph->overlay_tree() == snap_graph->overlay_tree());
  for (NodeId v = 0; v < live->n(); ++v) {
    EXPECT_TRUE(live_graph->attached(v));
    EXPECT_EQ(live_graph->current_parents()[static_cast<std::size_t>(v)],
              live_graph->overlay_tree().parent(v));
  }
  // Both stabilize.
  ASSERT_NE(live->run_until_stabilized(10'000'000), sim::kTimeInfinity);
}

TEST(Churn, NodeCrashRevokesLeaseExactlyOnce) {
  auto system = make_live_grid(4, 4, 23);
  auto* graph = dynamic_cast<GraphSystem*>(system.get());
  ASSERT_NE(graph, nullptr);
  ASSERT_NE(system->run_until_stabilized(10'000'000), sim::kTimeInfinity);

  const NodeId victim = 5;
  Client& client = system->clients().at(victim);
  int revoked = 0;
  Lease lease;
  client.on_revoked([&revoked] { ++revoked; });
  client.on_granted([&lease](Lease granted) { lease = std::move(granted); });
  client.acquire(1);
  sim::SimTime deadline = system->engine().now() + 5'000'000;
  while (!client.holding() && system->engine().now() < deadline) {
    system->run_until(system->engine().now() + 10'000);
  }
  ASSERT_TRUE(client.holding()) << "grant never arrived";
  ASSERT_TRUE(lease.active());

  support::Rng rng(0xC0DEu);
  TopologyFaultResult repair =
      graph->apply_topology_fault(crash_nodes({victim}), rng);
  EXPECT_EQ(repair.nodes_changed, 1);
  EXPECT_EQ(repair.detached, 1);
  EXPECT_EQ(repair.attached_nodes, system->n() - 1);

  // The lease was revoked exactly once, not silently lost.
  EXPECT_EQ(revoked, 1);
  EXPECT_FALSE(client.holding());
  EXPECT_FALSE(client.reachable());
  EXPECT_FALSE(lease.active());
  lease.release();  // stale: must be a silent no-op

  // A second, unrelated repair must not re-fire the revocation.
  graph->apply_topology_fault(crash_nodes({10}), rng);
  EXPECT_EQ(revoked, 1);

  // Census stays exact and the survivors re-stabilize.
  expect_census_exact(*system);
  sim::SimTime now = system->engine().now();
  ASSERT_NE(system->run_until_stabilized(now + 10'000'000),
            sim::kTimeInfinity);
}

TEST(Churn, UnreachableAcquireDeniedRetryably) {
  auto system = make_live_grid(4, 4, 31);
  auto* graph = dynamic_cast<GraphSystem*>(system.get());
  ASSERT_NE(graph, nullptr);
  ASSERT_NE(system->run_until_stabilized(10'000'000), sim::kTimeInfinity);

  const NodeId victim = 7;
  Client& client = system->clients().at(victim);
  std::vector<DenyReason> denies;
  client.on_denied([&denies](DenyReason reason) { denies.push_back(reason); });

  support::Rng rng(0xF00Du);
  graph->apply_topology_fault(crash_nodes({victim}), rng);
  ASSERT_FALSE(client.reachable());

  // Idle acquire on a detached node: denied immediately, retryably.
  client.acquire(1);
  ASSERT_EQ(denies.size(), 1u);
  EXPECT_EQ(denies[0], DenyReason::kUnreachable);
  EXPECT_STREQ(deny_reason_name(denies[0]), "unreachable");
  EXPECT_TRUE(client.idle());

  // A *pending* acquire elsewhere is denied when its node detaches.
  const NodeId pending_victim = 10;
  Client& pending = system->clients().at(pending_victim);
  std::vector<DenyReason> pending_denies;
  pending.on_denied(
      [&pending_denies](DenyReason reason) { pending_denies.push_back(reason); });
  pending.acquire(2);
  if (pending.waiting()) {
    graph->apply_topology_fault(crash_nodes({pending_victim}), rng);
    ASSERT_EQ(pending_denies.size(), 1u);
    EXPECT_EQ(pending_denies[0], DenyReason::kUnreachable);
    EXPECT_TRUE(pending.idle());
  }
}

TEST(Churn, RestoreReattachesAndGrantsAgain) {
  auto system = make_live_grid(4, 4, 43);
  auto* graph = dynamic_cast<GraphSystem*>(system.get());
  ASSERT_NE(graph, nullptr);
  ASSERT_NE(system->run_until_stabilized(10'000'000), sim::kTimeInfinity);

  const NodeId victim = 9;
  support::Rng rng(0xBEEFu);
  graph->apply_topology_fault(crash_nodes({victim}), rng);
  EXPECT_FALSE(graph->attached(victim));
  sim::SimTime now = system->engine().now();
  ASSERT_NE(system->run_until_stabilized(now + 10'000'000),
            sim::kTimeInfinity);

  TopologyFaultResult repair = graph->apply_topology_fault(
      crash_nodes({victim}, /*restore=*/true), rng);
  EXPECT_EQ(repair.reattached, 1);
  EXPECT_EQ(repair.attached_nodes, system->n());
  EXPECT_TRUE(graph->attached(victim));
  Client& client = system->clients().at(victim);
  EXPECT_TRUE(client.reachable());

  now = system->engine().now();
  ASSERT_NE(system->run_until_stabilized(now + 10'000'000),
            sim::kTimeInfinity);
  client.acquire(1);
  sim::SimTime deadline = system->engine().now() + 5'000'000;
  while (!client.holding() && system->engine().now() < deadline) {
    system->run_until(system->engine().now() + 10'000);
  }
  EXPECT_TRUE(client.holding()) << "reattached node never granted";
}

TEST(Churn, LinkChurnWithRedundancyKeepsEveryoneAttached) {
  // A grid has no bridges: failing any single link must detach nobody;
  // the repair reroutes the overlay instead.
  auto system = make_live_grid(4, 4, 53);
  auto* graph = dynamic_cast<GraphSystem*>(system.get());
  ASSERT_NE(graph, nullptr);
  ASSERT_NE(system->run_until_stabilized(10'000'000), sim::kTimeInfinity);

  support::Rng rng(0x11Cu);
  for (int round = 0; round < 3; ++round) {
    TopologyFaultResult repair =
        graph->apply_topology_fault(churn_links_random(1), rng);
    EXPECT_EQ(repair.links_changed, 1);
    EXPECT_EQ(repair.detached, 0);
    EXPECT_EQ(repair.attached_nodes, system->n());
    expect_census_exact(*system);
    sim::SimTime now = system->engine().now();
    ASSERT_NE(system->run_until_stabilized(now + 10'000'000),
              sim::kTimeInfinity)
        << "round " << round;
  }
  EXPECT_EQ(graph->repair_count(), 3);
}

TEST(Churn, DriverRetriesWithBackoffAndRecoversThroughput) {
  proto::WorkloadSpec workload;
  workload.base.think = proto::Dist::exponential(40);
  workload.base.cs_duration = proto::Dist::exponential(20);
  workload.base.need = proto::Dist::uniform(1, 2);

  FaultPlan plan;
  plan.events.push_back(crash_nodes({5, 6}));
  plan.events.push_back(crash_nodes({5, 6}, /*restore=*/true));
  ASSERT_TRUE(plan.has_topology_events());

  Session session = SystemBuilder()
                        .graph(stree::grid(4, 4))
                        .kl(2, 4)
                        .cmax(3)
                        .features(proto::Features::full().with_epoch_cut())
                        .seed(67)
                        .workload(workload)
                        .fault_plan(plan)
                        .build_session();
  SystemBase& system = *session.system;
  ASSERT_NE(system.run_until_stabilized(10'000'000), sim::kTimeInfinity);
  session.begin_workload();
  system.run_until(system.engine().now() + 200'000);
  std::int64_t grants_before = session.driver->total_grants();
  EXPECT_GT(grants_before, 0);

  // Crash two nodes; the driver resyncs, survivors keep granting while
  // the detached clients back off on kUnreachable denials.
  support::Rng rng(0xFA17u);
  session.apply_fault_event(plan.events[0], rng);
  system.run_until(system.engine().now() + 400'000);
  std::int64_t grants_during = session.driver->total_grants();
  EXPECT_GT(grants_during, grants_before);

  // Restore: the reattached nodes grant again after resync + backoff.
  std::int64_t victim_grants_before =
      session.driver->grants(5) + session.driver->grants(6);
  session.apply_fault_event(plan.events[1], rng);
  system.run_until(system.engine().now() + 1'500'000);
  EXPECT_GT(session.driver->grants(5) + session.driver->grants(6),
            victim_grants_before);
  EXPECT_GT(session.driver->total_grants(), grants_during);
}

TEST(Churn, PartitionRevokesEveryLostLeaseNeverSilently) {
  // Crash a block of nodes while many hold leases; every lease on a lost
  // node must surface through on_revoked (count == lost holders), every
  // lease on a survivor must stay intact.
  auto system = make_live_grid(4, 4, 71);
  auto* graph = dynamic_cast<GraphSystem*>(system.get());
  ASSERT_NE(graph, nullptr);
  ASSERT_NE(system->run_until_stabilized(10'000'000), sim::kTimeInfinity);

  std::vector<int> revoked(static_cast<std::size_t>(system->n()), 0);
  for (NodeId v = 0; v < system->n(); ++v) {
    Client& client = system->clients().at(v);
    client.on_revoked([&revoked, v] { ++revoked[static_cast<std::size_t>(v)]; });
    client.on_granted([](Lease lease) { lease.detach(); });
  }
  // Saturate: l=4 units, ask 1 each from four nodes, run until grants.
  for (NodeId v : {5, 6, 9, 10}) system->clients().at(v).acquire(1);
  sim::SimTime deadline = system->engine().now() + 5'000'000;
  auto holders = [&] {
    int count = 0;
    for (NodeId v = 0; v < system->n(); ++v) {
      if (system->clients().at(v).holding()) ++count;
    }
    return count;
  };
  while (holders() < 2 && system->engine().now() < deadline) {
    system->run_until(system->engine().now() + 10'000);
  }
  ASSERT_GE(holders(), 2);

  std::vector<int> lost_holders;
  for (NodeId v : {5, 6, 9, 10}) {
    if (system->clients().at(v).holding()) lost_holders.push_back(v);
  }
  support::Rng rng(0xD00Du);
  TopologyFaultResult repair =
      graph->apply_topology_fault(crash_nodes({5, 6, 9, 10}), rng);
  EXPECT_EQ(repair.detached, 4);
  for (int v : lost_holders) {
    EXPECT_EQ(revoked[static_cast<std::size_t>(v)], 1)
        << "lease on crashed node " << v << " not revoked exactly once";
  }
  for (NodeId v = 0; v < system->n(); ++v) {
    if (graph->attached(v)) {
      EXPECT_EQ(revoked[static_cast<std::size_t>(v)], 0)
          << "surviving node " << v << " spuriously revoked";
    }
  }
  expect_census_exact(*system);
  sim::SimTime now = system->engine().now();
  ASSERT_NE(system->run_until_stabilized(now + 10'000'000),
            sim::kTimeInfinity);
}

}  // namespace
}  // namespace klex
