// Section 5 composition: arbitrary rooted network → self-stabilizing BFS
// spanning tree → k-out-of-ℓ exclusion on the extracted oriented tree.
#include <gtest/gtest.h>

#include "api/system.hpp"
#include "api/workload_driver.hpp"
#include "proto/workload.hpp"
#include "stree/spanning_tree.hpp"
#include "verify/safety_monitor.hpp"

namespace klex {
namespace {

tree::Tree spanning_tree_of(stree::Graph g, std::uint64_t seed) {
  stree::SpanningTreeSystem::Config config;
  config.graph = std::move(g);
  config.seed = seed;
  stree::SpanningTreeSystem system(std::move(config));
  EXPECT_NE(system.run_until_converged(4'000'000), sim::kTimeInfinity);
  auto extracted = system.try_extract_tree();
  EXPECT_TRUE(extracted.has_value());
  return *extracted;
}

void exercise_exclusion_on(tree::Tree t, std::uint64_t seed) {
  SystemConfig config;
  config.tree = std::move(t);
  config.k = 2;
  config.l = 3;
  config.seed = seed;
  System system(config);
  verify::SafetyMonitor safety(system.n(), config.k, config.l);
  system.add_listener(&safety);
  ASSERT_NE(system.run_until_stabilized(4'000'000), sim::kTimeInfinity);

  proto::NodeBehavior behavior;
  behavior.think = proto::Dist::exponential(64);
  behavior.cs_duration = proto::Dist::exponential(32);
  behavior.need = proto::Dist::uniform(1, 2);
  WorkloadDriver driver(system.engine(), system.clients(),
                               proto::uniform_behaviors(system.n(), behavior),
                               support::Rng(seed ^ 0x51));
  driver.begin();
  system.run_until(system.engine().now() + 2'000'000);

  EXPECT_GT(driver.total_grants(), 30);
  EXPECT_FALSE(safety.any_violation());
  EXPECT_TRUE(system.token_counts_correct());
}

TEST(Composition, GridNetwork) {
  exercise_exclusion_on(spanning_tree_of(stree::grid(3, 3), 81), 82);
}

TEST(Composition, CycleNetwork) {
  exercise_exclusion_on(spanning_tree_of(stree::cycle_graph(8), 83), 84);
}

TEST(Composition, RandomNetworks) {
  support::Rng rng(85);
  for (int trial = 0; trial < 3; ++trial) {
    stree::Graph g = stree::random_connected(12, 8, rng);
    exercise_exclusion_on(spanning_tree_of(std::move(g), 86 + trial),
                          90 + trial);
  }
}

TEST(Composition, CompleteNetworkYieldsStarLikeTree) {
  tree::Tree t = spanning_tree_of(stree::complete_graph(6), 95);
  // BFS from the root of a complete graph puts every node at depth 1.
  EXPECT_EQ(t.height(), 1);
  exercise_exclusion_on(std::move(t), 96);
}

}  // namespace
}  // namespace klex
