// Reproducibility: identical seeds must give bit-identical executions --
// a prerequisite for every experiment in EXPERIMENTS.md being replayable.
#include <gtest/gtest.h>

#include "api/system.hpp"
#include "api/workload_driver.hpp"
#include "proto/workload.hpp"

namespace klex {
namespace {

struct Fingerprint {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::int64_t grants = 0;
  sim::SimTime stabilized_at = 0;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

Fingerprint run_once(std::uint64_t seed) {
  SystemConfig config;
  config.tree = tree::balanced(2, 2);
  config.k = 2;
  config.l = 3;
  config.seed = seed;
  System system(config);
  Fingerprint fp;
  fp.stabilized_at = system.run_until_stabilized(4'000'000);

  proto::NodeBehavior behavior;
  behavior.think = proto::Dist::exponential(64);
  behavior.cs_duration = proto::Dist::exponential(32);
  behavior.need = proto::Dist::uniform(1, 2);
  WorkloadDriver driver(system.engine(), system.clients(),
                               proto::uniform_behaviors(system.n(), behavior),
                               support::Rng(seed));
  driver.begin();
  system.run_until(system.engine().now() + 1'000'000);

  fp.messages_sent = system.engine().messages_sent();
  fp.messages_delivered = system.engine().messages_delivered();
  fp.grants = driver.total_grants();
  return fp;
}

TEST(Determinism, SameSeedSameExecution) {
  Fingerprint a = run_once(1001);
  Fingerprint b = run_once(1001);
  EXPECT_EQ(a, b);
}

TEST(Determinism, DifferentSeedsDiverge) {
  Fingerprint a = run_once(1001);
  Fingerprint b = run_once(1002);
  EXPECT_NE(a, b);
}

TEST(Determinism, FaultInjectionIsReproducible) {
  auto run_with_fault = [](std::uint64_t seed) {
    SystemConfig config;
    config.tree = tree::line(6);
    config.k = 1;
    config.l = 2;
    config.seed = seed;
    System system(config);
    EXPECT_NE(system.run_until_stabilized(4'000'000), sim::kTimeInfinity);
    support::Rng fault_rng(seed + 7);
    system.inject_transient_fault(fault_rng);
    sim::SimTime recovered =
        system.run_until_stabilized(system.engine().now() + 30'000'000);
    return std::pair{recovered, system.engine().messages_delivered()};
  };
  EXPECT_EQ(run_with_fault(77), run_with_fault(77));
}

}  // namespace
}  // namespace klex
