// The epoch-cut batched recovery drain (Features::epoch_cut).
//
// Pins the contract of SystemBase::epoch_cut_recover(): a no-op on a
// legitimate population, a single batched pass otherwise -- channels
// wiped, stored tokens drained through the delta sinks (so the
// incremental census stays exact), the root re-minted -- after which the
// system confirms stabilization quickly instead of circulating garbage
// for Θ(n) ticks. Also pins that the rung is strictly opt-in: without
// Features::epoch_cut the call refuses, and Session::apply_planned_fault
// only cuts on cut-enabled systems.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "api/builder.hpp"
#include "exp/scenario.hpp"
#include "proto/census.hpp"

namespace klex {
namespace {

std::unique_ptr<SystemBase> make_cut_system(const exp::TopologySpec& topo,
                                            std::uint64_t seed) {
  return SystemBuilder()
      .topology(topo)
      .kl(2, 4)
      .cmax(3)
      .features(proto::Features::full().with_epoch_cut())
      .seed(seed)
      .build();
}

TEST(EpochCut, FeatureNamesComposeWithCut) {
  EXPECT_STREQ(proto::Features::full().with_epoch_cut().name(), "full+cut");
  EXPECT_STREQ(proto::Features::naive().with_epoch_cut().name(),
               "naive+cut");
  EXPECT_STREQ(proto::Features::with_priority().with_epoch_cut().name(),
               "pusher+priority+cut");
  // The cut flag does not perturb the plain rung names the committed
  // baselines are keyed by.
  EXPECT_STREQ(proto::Features::full().name(), "full");
}

TEST(EpochCut, RecoverRequiresTheRung) {
  auto system = SystemBuilder()
                    .topology(exp::TopologySpec::tree_line(8))
                    .kl(1, 2)
                    .build();
  EXPECT_THROW(system->epoch_cut_recover(), std::logic_error);
}

TEST(EpochCut, NoOpOnLegitimatePopulation) {
  auto system = make_cut_system(exp::TopologySpec::tree_line(8), 5);
  ASSERT_NE(system->run_until_stabilized(10'000'000), sim::kTimeInfinity);
  std::uint64_t delivered = system->engine().messages_delivered();
  EXPECT_FALSE(system->epoch_cut_recover());
  EXPECT_EQ(system->engine().messages_delivered(), delivered);
  EXPECT_TRUE(system->token_counts_correct());
}

TEST(EpochCut, DrainsTransientFaultInOnePass) {
  auto system = make_cut_system(exp::TopologySpec::tree_random(24, 3), 11);
  ASSERT_NE(system->run_until_stabilized(10'000'000), sim::kTimeInfinity);

  support::Rng rng(0xC0FFEEu);
  system->inject_transient_fault(rng);
  ASSERT_FALSE(system->token_counts_correct())
      << "fault seeded a legitimate population by chance; pick a new seed";

  std::uint64_t events_before = system->engine().events_executed();
  EXPECT_TRUE(system->epoch_cut_recover());

  // The cut is a batched pass, not a simulation: no events executed, and
  // the population is legitimate the moment it returns (the fresh mint
  // is in flight, every stored token is gone).
  EXPECT_EQ(system->engine().events_executed(), events_before);
  EXPECT_TRUE(system->token_counts_correct());

  // The incremental census stayed exact through the drain hooks.
  proto::TokenCensus tracked = system->census();
  proto::TokenCensus oracle = system->census_oracle();
  EXPECT_EQ(tracked.free_resource, oracle.free_resource);
  EXPECT_EQ(tracked.reserved_resource, oracle.reserved_resource);
  EXPECT_EQ(tracked.pusher, oracle.pusher);
  EXPECT_EQ(tracked.free_priority, oracle.free_priority);
  EXPECT_EQ(tracked.held_priority, oracle.held_priority);
  EXPECT_EQ(oracle.reserved_resource, 0);
  EXPECT_EQ(oracle.held_priority, 0);

  // And the population stays legitimate: stabilization confirms from the
  // cut timestamp, no reset circulation needed.
  sim::SimTime fault_at = system->engine().now();
  sim::SimTime recovered =
      system->run_until_stabilized(fault_at + 10'000'000);
  ASSERT_NE(recovered, sim::kTimeInfinity);
  EXPECT_EQ(recovered, fault_at);
}

TEST(EpochCut, DrainsGarbageFloodBeyondCmax) {
  // A flood far beyond the CMAX the myC domain was sized for: the pure
  // protocol's convergence guarantee is void here, the cut's is not.
  auto system = make_cut_system(exp::TopologySpec::tree_line(8), 21);
  ASSERT_NE(system->run_until_stabilized(10'000'000), sim::kTimeInfinity);
  support::Rng rng(77);
  system->flood_channels(rng, /*garbage_per_channel=*/32);
  ASSERT_FALSE(system->token_counts_correct());
  EXPECT_TRUE(system->epoch_cut_recover());
  EXPECT_TRUE(system->token_counts_correct());
  sim::SimTime now = system->engine().now();
  ASSERT_NE(system->run_until_stabilized(now + 10'000'000),
            sim::kTimeInfinity);
}

TEST(EpochCut, WorksOnRingAndGraphToo) {
  for (const exp::TopologySpec& topo :
       {exp::TopologySpec::ring(12),
        exp::TopologySpec::graph_random(16, 10, 3)}) {
    auto system = make_cut_system(topo, 31);
    ASSERT_NE(system->run_until_stabilized(10'000'000), sim::kTimeInfinity);
    support::Rng rng(0xABCu);
    system->inject_transient_fault(rng);
    if (system->token_counts_correct()) continue;  // vanishingly unlikely
    EXPECT_TRUE(system->epoch_cut_recover());
    EXPECT_TRUE(system->token_counts_correct());
    sim::SimTime now = system->engine().now();
    ASSERT_NE(system->run_until_stabilized(now + 10'000'000),
              sim::kTimeInfinity);
  }
}

TEST(EpochCut, SessionAppliesCutOnPlannedFault) {
  proto::WorkloadSpec workload;
  workload.base.think = proto::Dist::exponential(40);
  workload.base.cs_duration = proto::Dist::exponential(20);
  workload.base.need = proto::Dist::uniform(1, 2);

  Session session = SystemBuilder()
                        .topology(exp::TopologySpec::tree_random(16, 9))
                        .kl(2, 4)
                        .features(proto::Features::full().with_epoch_cut())
                        .seed(99)
                        .workload(workload)
                        .fault(FaultKind::kTransient)
                        .build_session();
  ASSERT_NE(session.system->run_until_stabilized(10'000'000),
            sim::kTimeInfinity);
  session.begin_workload();
  session.system->run_until(session.system->engine().now() + 100'000);

  support::Rng rng(0xFA17u);
  session.apply_planned_fault(rng);
  // The cut ran inside apply_planned_fault: population legitimate with
  // zero recovery simulation, and the driver was resynced (post-fault
  // workload keeps making progress).
  EXPECT_TRUE(session.system->token_counts_correct());
  std::int64_t grants_before = session.driver->total_grants();
  session.system->run_until(session.system->engine().now() + 200'000);
  EXPECT_GT(session.driver->total_grants(), grants_before);
}

}  // namespace
}  // namespace klex
