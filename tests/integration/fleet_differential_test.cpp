// Fleet differential tests: the correctness anchor of the multi-tenant
// subsystem (api/fleet.hpp).
//
// The fleet's design claim is *standalone equivalence*: tenant t of a
// FleetSystem built with seed S replays, message for message, the
// standalone System built with seed S + t -- whatever the other tenants
// do. These tests pin that claim at full trace granularity:
//
//   1. fleet(1) is bit-identical to the plain single-system build
//      (same sends, same deliveries, same grants, same fault response);
//   2. every tenant of fleet(3) replays its standalone twin, including
//      through a transient fault injected into ONE tenant only -- the
//      faulted tenant tracks its (equally faulted) twin and the others
//      never notice;
//   3. the worker-lane count changes nothing per tenant (serial vs
//      windowed parallel execution), and each tenant still matches its
//      standalone twin's counters.
//
// All phases run to fixed horizons (run_until aligns every lane clock
// exactly at the horizon), so out-of-event actions -- fault injection,
// driver resync -- happen at identical simulated times on both sides.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "api/builder.hpp"
#include "api/fleet.hpp"
#include "proto/messages.hpp"

namespace klex {
namespace {

constexpr std::int32_t kResourceType =
    static_cast<std::int32_t>(proto::TokenType::kResource);

struct TraceEvent {
  sim::SimTime at = 0;
  int kind = 0;  // 0 = send, 1 = deliver
  NodeId node = -1;
  int channel = -1;
  sim::Message msg{};

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

class Recorder final : public sim::SimObserver {
 public:
  void on_send(sim::SimTime at, sim::NodeId from, int channel,
               const sim::Message& msg) override {
    events.push_back({at, 0, from, channel, msg});
  }
  void on_deliver(sim::SimTime at, sim::NodeId to, int channel,
                  const sim::Message& msg) override {
    events.push_back({at, 1, to, channel, msg});
  }

  std::vector<TraceEvent> events;
};

void expect_traces_equal(const std::vector<TraceEvent>& fleet_side,
                         const std::vector<TraceEvent>& single_side,
                         const std::string& label) {
  ASSERT_EQ(fleet_side.size(), single_side.size()) << label;
  for (std::size_t i = 0; i < fleet_side.size(); ++i) {
    const TraceEvent& a = fleet_side[i];
    const TraceEvent& b = single_side[i];
    ASSERT_TRUE(a == b) << label << ": first divergence at trace index " << i
                        << " (at " << a.at << " vs " << b.at << ", kind "
                        << a.kind << " vs " << b.kind << ", node " << a.node
                        << " vs " << b.node << ", channel " << a.channel
                        << " vs " << b.channel << ")";
  }
}

/// The fleet trace restricted to one tenant, re-expressed in tenant-local
/// node ids (channel indexes are per-node and need no translation).
std::vector<TraceEvent> tenant_slice(const std::vector<TraceEvent>& all,
                                     const FleetSystem& fleet, int tenant) {
  std::vector<TraceEvent> out;
  for (const TraceEvent& event : all) {
    if (fleet.tenant_of(event.node) != tenant) continue;
    TraceEvent local = event;
    local.node -= fleet.node_begin(tenant);
    out.push_back(local);
  }
  return out;
}

/// A workload with some heterogeneity so the class-materialization and
/// driver rng streams actually matter: relays, a budgeted class, and a
/// contended base (need can exceed 1).
proto::WorkloadSpec contention_spec() {
  proto::WorkloadSpec spec;
  spec.base.think = proto::Dist::exponential(48);
  spec.base.cs_duration = proto::Dist::exponential(24);
  spec.base.need = proto::Dist::uniform(1, 2);
  spec.classes.push_back(proto::BehaviorClass::relays("relays", 0.2));
  spec.classes.push_back(proto::BehaviorClass::budgeted("oneshot", 2, 2, 4));
  return spec;
}

SystemBuilder base_builder(std::uint64_t seed) {
  SystemBuilder builder;
  builder.topology(TopologySpec::tree_balanced(2, 3)).kl(2, 4).seed(seed);
  return builder;
}

TEST(FleetDifferentialTest, FleetOfOneIsBitIdenticalToSingleSystem) {
  const std::uint64_t seed = 4242;
  auto make = [&](bool as_fleet) {
    SystemBuilder builder = base_builder(seed);
    builder.workload(contention_spec());
    if (as_fleet) builder.fleet(1);
    return builder.build_session();
  };
  Session single = make(false);
  Session fleet = make(true);
  ASSERT_NE(single.driver, nullptr);
  ASSERT_NE(fleet.driver, nullptr);
  auto* fleet_system = dynamic_cast<FleetSystem*>(fleet.system.get());
  ASSERT_NE(fleet_system, nullptr);
  EXPECT_EQ(fleet_system->tenant_count(), 1);
  EXPECT_EQ(dynamic_cast<FleetSystem*>(single.system.get()), nullptr);
  EXPECT_EQ(fleet.system->n(), single.system->n());

  Recorder single_trace;
  Recorder fleet_trace;
  single.system->add_observer(&single_trace);
  fleet.system->add_observer(&fleet_trace);

  // Phase 0: initial stabilization reports the identical instant through
  // the fleet's incremental per-tenant probe.
  sim::SimTime single_stable = single.system->run_until_stabilized(1'000'000);
  sim::SimTime fleet_stable = fleet.system->run_until_stabilized(1'000'000);
  ASSERT_NE(single_stable, sim::kTimeInfinity);
  EXPECT_EQ(fleet_stable, single_stable);
  EXPECT_EQ(fleet_system->tenant_stabilized_at(0), fleet_stable);
  EXPECT_TRUE(fleet_system->tenant_correct(0));

  // Phase 1: closed-loop workload to a fixed horizon.
  single.begin_workload();
  fleet.begin_workload();
  const sim::SimTime kT1 = 400'000;
  single.system->run_until(kT1);
  fleet.system->run_until(kT1);
  expect_traces_equal(fleet_trace.events, single_trace.events,
                      "fleet(1) pre-fault");
  EXPECT_GT(single.driver->total_grants(), 0);
  EXPECT_EQ(fleet.driver->total_grants(), single.driver->total_grants());
  EXPECT_EQ(fleet.driver->total_requests(), single.driver->total_requests());

  // Phase 2: identical transient faults (identically seeded rngs draw the
  // identical corruption), symmetric driver resync, another fixed horizon.
  support::Rng single_fault(seed ^ 0x5EEDull);
  support::Rng fleet_fault(seed ^ 0x5EEDull);
  single.system->inject_transient_fault(single_fault);
  fleet.system->inject_transient_fault(fleet_fault);
  single.driver->resync();
  fleet.driver->resync();
  const sim::SimTime kT2 = 800'000;
  single.system->run_until(kT2);
  fleet.system->run_until(kT2);
  expect_traces_equal(fleet_trace.events, single_trace.events,
                      "fleet(1) post-fault");

  EXPECT_EQ(fleet.driver->total_grants(), single.driver->total_grants());
  EXPECT_EQ(fleet.driver->total_requests(), single.driver->total_requests());
  EXPECT_EQ(fleet.driver->total_denials(), single.driver->total_denials());
  for (int r = 0; r < kDenyReasonCount; ++r) {
    EXPECT_EQ(fleet.driver->deny_count(static_cast<DenyReason>(r)),
              single.driver->deny_count(static_cast<DenyReason>(r)))
        << to_string(static_cast<DenyReason>(r));
  }
  EXPECT_EQ(fleet.system->engine().messages_sent(),
            single.system->engine().messages_sent());
  EXPECT_EQ(fleet.system->engine().messages_delivered(),
            single.system->engine().messages_delivered());
  EXPECT_EQ(fleet.system->engine().events_executed(),
            single.system->engine().events_executed());
  EXPECT_EQ(fleet.system->token_counts_correct(),
            single.system->token_counts_correct());
}

TEST(FleetDifferentialTest, EachTenantReplaysItsStandaloneTwin) {
  const std::uint64_t seed = 777;
  const int kTenants = 3;

  SystemBuilder fleet_builder = base_builder(seed);
  fleet_builder.workload(contention_spec()).fleet(kTenants);
  Session fleet = fleet_builder.build_session();
  auto* fleet_system = dynamic_cast<FleetSystem*>(fleet.system.get());
  ASSERT_NE(fleet_system, nullptr);
  ASSERT_EQ(fleet_system->tenant_count(), kTenants);

  std::vector<Session> singles;
  for (int t = 0; t < kTenants; ++t) {
    SystemBuilder builder = base_builder(seed + static_cast<std::uint64_t>(t));
    builder.workload(contention_spec());
    singles.push_back(builder.build_session());
  }

  Recorder fleet_trace;
  std::vector<Recorder> single_traces(kTenants);
  fleet.system->add_observer(&fleet_trace);
  for (int t = 0; t < kTenants; ++t) {
    singles[static_cast<std::size_t>(t)].system->add_observer(
        &single_traces[static_cast<std::size_t>(t)]);
  }

  // Phase 1: everyone runs its workload to the same horizon.
  fleet.begin_workload();
  for (Session& s : singles) s.begin_workload();
  const sim::SimTime kT1 = 250'000;
  fleet.system->run_until(kT1);
  for (Session& s : singles) s.system->run_until(kT1);

  const int per_tenant_n = fleet_system->tenant_n(0);
  for (int t = 0; t < kTenants; ++t) {
    Session& twin = singles[static_cast<std::size_t>(t)];
    expect_traces_equal(
        tenant_slice(fleet_trace.events, *fleet_system, t),
        single_traces[static_cast<std::size_t>(t)].events,
        "pre-fault tenant " + std::to_string(t));
    for (NodeId local = 0; local < per_tenant_n; ++local) {
      NodeId global = fleet_system->global_id(t, local);
      EXPECT_EQ(fleet.driver->grants(global), twin.driver->grants(local));
      EXPECT_EQ(fleet.driver->requests_issued(global),
                twin.driver->requests_issued(local));
    }
  }

  // Phase 2: transient fault into tenant 1 ONLY; its standalone twin gets
  // the identically seeded fault. All drivers resync (a no-op for
  // sessions whose protocol state is untouched), then another horizon.
  support::Rng fleet_fault(seed ^ 0xFA17ull);
  support::Rng twin_fault(seed ^ 0xFA17ull);
  fleet_system->inject_transient_fault_tenant(1, fleet_fault);
  singles[1].system->inject_transient_fault(twin_fault);
  fleet.driver->resync();
  for (Session& s : singles) s.driver->resync();
  const sim::SimTime kT2 = 550'000;
  fleet.system->run_until(kT2);
  for (Session& s : singles) s.system->run_until(kT2);

  for (int t = 0; t < kTenants; ++t) {
    Session& twin = singles[static_cast<std::size_t>(t)];
    expect_traces_equal(
        tenant_slice(fleet_trace.events, *fleet_system, t),
        single_traces[static_cast<std::size_t>(t)].events,
        "post-fault tenant " + std::to_string(t));
    for (NodeId local = 0; local < per_tenant_n; ++local) {
      NodeId global = fleet_system->global_id(t, local);
      EXPECT_EQ(fleet.driver->grants(global), twin.driver->grants(local));
    }
    // Per-tenant observables agree with the twin's global ones.
    EXPECT_EQ(fleet_system->tenant_correct(t),
              twin.system->token_counts_correct())
        << "tenant " << t;
    EXPECT_EQ(fleet_system->tenant_events_executed(t),
              twin.system->engine().events_executed())
        << "tenant " << t;
    EXPECT_EQ(fleet_system->tenant_sent_of_type(t, kResourceType),
              twin.system->engine().sent_of_type(kResourceType))
        << "tenant " << t;
    // Nobody ran an epoch-cut recovery (the rung is not enabled here).
    EXPECT_EQ(fleet_system->tenant_recovery_events(t), 0);
  }
}

struct TenantFingerprint {
  std::uint64_t events = 0;
  std::uint64_t resource_sends = 0;
  bool correct = false;

  friend bool operator==(const TenantFingerprint&,
                         const TenantFingerprint&) = default;
};

TEST(FleetDifferentialTest, WorkerLaneCountDoesNotChangeTenantTrajectories) {
  const std::uint64_t seed = 909;
  const int kTenants = 4;
  const sim::SimTime kHorizon = 250'000;

  // No observers here: blocking observers force the parallel engine's
  // merged-serial fallback, and this test exists to exercise the real
  // windowed path.
  auto fingerprint = [&](int threads) {
    SystemBuilder builder = base_builder(seed);
    builder.fleet(kTenants).threads(threads);
    std::unique_ptr<SystemBase> system = builder.build();
    auto* fleet = dynamic_cast<FleetSystem*>(system.get());
    EXPECT_NE(fleet, nullptr);
    EXPECT_EQ(system->threads(), std::min(threads, kTenants));
    system->run_until(kHorizon);
    std::vector<TenantFingerprint> out;
    for (int t = 0; t < kTenants; ++t) {
      out.push_back({fleet->tenant_events_executed(t),
                     fleet->tenant_sent_of_type(t, kResourceType),
                     fleet->tenant_correct(t)});
    }
    return out;
  };

  std::vector<TenantFingerprint> serial = fingerprint(1);
  EXPECT_EQ(fingerprint(2), serial);
  EXPECT_EQ(fingerprint(4), serial);

  // And the serial fleet's per-tenant counters equal each standalone twin.
  for (int t = 0; t < kTenants; ++t) {
    SystemBuilder builder =
        base_builder(seed + static_cast<std::uint64_t>(t));
    std::unique_ptr<SystemBase> twin = builder.build();
    twin->run_until(kHorizon);
    const TenantFingerprint& got = serial[static_cast<std::size_t>(t)];
    EXPECT_EQ(got.events, twin->engine().events_executed()) << "tenant " << t;
    EXPECT_EQ(got.resource_sends, twin->engine().sent_of_type(kResourceType))
        << "tenant " << t;
    EXPECT_EQ(got.correct, twin->token_counts_correct()) << "tenant " << t;
  }
}

}  // namespace
}  // namespace klex
