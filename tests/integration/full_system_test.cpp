// End-to-end: the full self-stabilizing protocol under sustained load on
// several topologies, with all monitors attached.
#include <gtest/gtest.h>

#include "api/system.hpp"
#include "proto/trace.hpp"
#include "api/workload_driver.hpp"
#include "proto/workload.hpp"
#include "verify/fairness_monitor.hpp"
#include "verify/safety_monitor.hpp"

namespace klex {
namespace {

struct RunResult {
  std::int64_t grants = 0;
  std::int64_t requests = 0;
  bool safety_ok = false;
  bool census_ok = false;
  sim::SimTime oldest_outstanding = 0;
};

RunResult run_loaded_system(tree::Tree t, int k, int l, std::uint64_t seed,
                            sim::SimTime horizon) {
  SystemConfig config;
  config.tree = std::move(t);
  config.k = k;
  config.l = l;
  config.seed = seed;
  System system(config);

  verify::SafetyMonitor safety(system.n(), k, l);
  verify::FairnessMonitor fairness(system.n());
  system.add_listener(&safety);
  system.add_listener(&fairness);

  EXPECT_NE(system.run_until_stabilized(4'000'000), sim::kTimeInfinity);

  proto::NodeBehavior behavior;
  behavior.think = proto::Dist::exponential(96);
  behavior.cs_duration = proto::Dist::exponential(48);
  behavior.need = proto::Dist::uniform(1, k);
  WorkloadDriver driver(system.engine(), system.clients(),
                               proto::uniform_behaviors(system.n(), behavior),
                               support::Rng(seed ^ 0xBEEF));
  driver.begin();
  system.run_until(system.engine().now() + horizon);

  RunResult result;
  result.grants = driver.total_grants();
  result.requests = driver.total_requests();
  result.safety_ok = !safety.any_violation();
  result.census_ok = system.token_counts_correct();
  result.oldest_outstanding =
      fairness.oldest_outstanding_age(system.engine().now());
  return result;
}

TEST(FullSystem, Figure1TreeUnderLoad) {
  RunResult r = run_loaded_system(tree::figure1_tree(), 2, 4, 11, 3'000'000);
  EXPECT_GT(r.grants, 100);
  EXPECT_TRUE(r.safety_ok);
  EXPECT_TRUE(r.census_ok);
  EXPECT_LT(r.oldest_outstanding, 1'000'000u);
}

TEST(FullSystem, DeepLineUnderLoad) {
  RunResult r = run_loaded_system(tree::line(12), 2, 3, 12, 4'000'000);
  EXPECT_GT(r.grants, 50);
  EXPECT_TRUE(r.safety_ok);
  EXPECT_TRUE(r.census_ok);
}

TEST(FullSystem, WideStarUnderLoad) {
  RunResult r = run_loaded_system(tree::star(12), 2, 3, 13, 4'000'000);
  EXPECT_GT(r.grants, 50);
  EXPECT_TRUE(r.safety_ok);
  EXPECT_TRUE(r.census_ok);
}

TEST(FullSystem, BalancedTreeUnderLoad) {
  RunResult r = run_loaded_system(tree::balanced(3, 2), 3, 6, 14, 4'000'000);
  EXPECT_GT(r.grants, 100);
  EXPECT_TRUE(r.safety_ok);
  EXPECT_TRUE(r.census_ok);
}

TEST(FullSystem, RandomTreesUnderLoad) {
  support::Rng shape_rng(15);
  for (int trial = 0; trial < 3; ++trial) {
    RunResult r = run_loaded_system(tree::random_tree(10, shape_rng), 2, 4,
                                    16 + trial, 3'000'000);
    EXPECT_GT(r.grants, 50) << "trial " << trial;
    EXPECT_TRUE(r.safety_ok) << "trial " << trial;
    EXPECT_TRUE(r.census_ok) << "trial " << trial;
  }
}

TEST(FullSystem, LExclusionSpecialCase) {
  // k = 1 degenerates to ℓ-exclusion: up to ℓ simultaneous unit holders.
  RunResult r = run_loaded_system(tree::balanced(2, 3), 1, 5, 17, 3'000'000);
  EXPECT_GT(r.grants, 200);
  EXPECT_TRUE(r.safety_ok);
}

TEST(FullSystem, MutualExclusionSpecialCase) {
  // k = ℓ = 1 degenerates to mutual exclusion.
  RunResult r = run_loaded_system(tree::line(5), 1, 1, 18, 3'000'000);
  EXPECT_GT(r.grants, 50);
  EXPECT_TRUE(r.safety_ok);
}

TEST(FullSystem, MessageOverheadIsBoundedPerGrant) {
  SystemConfig config;
  config.tree = tree::balanced(2, 2);
  config.k = 2;
  config.l = 3;
  config.seed = 19;
  System system(config);
  proto::MessageCounter counter;
  system.add_observer(&counter);
  ASSERT_NE(system.run_until_stabilized(4'000'000), sim::kTimeInfinity);

  proto::NodeBehavior behavior;
  behavior.think = proto::Dist::fixed(64);
  behavior.cs_duration = proto::Dist::fixed(32);
  behavior.need = proto::Dist::fixed(1);
  WorkloadDriver driver(system.engine(), system.clients(),
                               proto::uniform_behaviors(system.n(), behavior),
                               support::Rng(20));
  driver.begin();
  counter.reset();
  system.run_until(system.engine().now() + 2'000'000);

  ASSERT_GT(driver.total_grants(), 0);
  double messages_per_grant =
      static_cast<double>(counter.total()) /
      static_cast<double>(driver.total_grants());
  // The steady-state cost per grant is bounded (tokens + controller keep
  // circulating; the check is a regression guard, not a tight bound).
  EXPECT_LT(messages_per_grant, 2000.0);
  EXPECT_GT(counter.control(), 0u);
  EXPECT_GT(counter.resource(), 0u);
}

}  // namespace
}  // namespace klex
