// Acceptance pin for the heterogeneous-workload redesign: the paper's
// (k,ℓ)-liveness result (Lemma 14) reproduced through the declarative
// ExperimentRunner path -- a ScenarioSpec with a non-empty hold-forever
// class, no hand-rolled driving.
//
// With the set I holding α units forever, the effective capacity drops to
// ℓ − α: requesters within that bound keep making progress on every seed,
// a requester demanding more than ℓ − α starves.
#include <gtest/gtest.h>

#include "exp/runner.hpp"

namespace klex::exp {
namespace {

const ClassResult* find_class(const RunResult& run, const std::string& name) {
  for (const ClassResult& cls : run.classes) {
    if (cls.name == name) return &cls;
  }
  return nullptr;
}

TEST(KlLivenessRunner, HoldForeverClassReducesEffectiveCapacity) {
  // ℓ = 4, k = 4 on the 7-node balanced tree. I = two holders pinning one
  // unit each (α = 2); the remaining requesters ask for ≤ ℓ − α = 2.
  ScenarioSpec spec;
  spec.name = "klliveness_pin";
  spec.topologies = {TopologySpec::tree_balanced(2, 2)};
  spec.kl = {{4, 4}};
  spec.workload.classes.push_back(proto::BehaviorClass::holders("I", 2, 1));
  spec.workload.base.think = proto::Dist::exponential(64);
  spec.workload.base.cs_duration = proto::Dist::exponential(32);
  spec.workload.base.need = proto::Dist::uniform(1, 2);
  spec.horizon = 1'000'000;
  spec.seeds = 3;
  spec.base_seed = 900;

  std::vector<RunResult> results = ExperimentRunner(2).run(spec);
  ASSERT_EQ(results.size(), 3u);
  for (const RunResult& run : results) {
    EXPECT_TRUE(run.stabilized) << "seed " << run.seed;
    EXPECT_TRUE(run.safety_ok) << "seed " << run.seed;
    const ClassResult* holders = find_class(run, "I");
    ASSERT_NE(holders, nullptr) << "seed " << run.seed;
    EXPECT_EQ(holders->nodes, 2);
    // The set I is camping when the window closes...
    EXPECT_EQ(holders->holding_at_end, 2) << "seed " << run.seed;
    EXPECT_EQ(holders->grants, 2) << "seed " << run.seed;
    // ...and the outside requesters still make progress against the
    // residual capacity ℓ − α = 2.
    const ClassResult* base = find_class(run, "base");
    ASSERT_NE(base, nullptr) << "seed " << run.seed;
    EXPECT_GT(base->grants, 100) << "seed " << run.seed;
  }
}

TEST(KlLivenessRunner, OversizedResidualRequestStarves) {
  // Same set I (α = 2), but the probe demands ℓ − α + 1 = 3 units: it can
  // never be served while I holds. The property's premise is violated for
  // that node only; the holders keep camping.
  ScenarioSpec spec;
  spec.name = "klliveness_oversized_pin";
  spec.topologies = {TopologySpec::tree_balanced(2, 2)};
  spec.kl = {{4, 4}};
  spec.workload.base.active = false;  // isolate the probe
  auto holders = proto::BehaviorClass::holders("I", 2, 1);
  holders.behavior.think = proto::Dist::fixed(16);
  spec.workload.classes.push_back(holders);
  proto::BehaviorClass probe;
  probe.name = "probe";
  probe.count = 1;
  probe.behavior.need = proto::Dist::fixed(3);
  // First request only after the holders have settled in.
  probe.behavior.think = proto::Dist::fixed(50'000);
  spec.workload.classes.push_back(probe);
  spec.horizon = 1'500'000;
  spec.seeds = 2;
  spec.base_seed = 910;

  std::vector<RunResult> results = ExperimentRunner(2).run(spec);
  ASSERT_EQ(results.size(), 2u);
  for (const RunResult& run : results) {
    const ClassResult* holding = find_class(run, "I");
    ASSERT_NE(holding, nullptr);
    EXPECT_EQ(holding->holding_at_end, 2) << "seed " << run.seed;
    const ClassResult* probe_cell = find_class(run, "probe");
    ASSERT_NE(probe_cell, nullptr);
    EXPECT_EQ(probe_cell->grants, 0)
        << "seed " << run.seed << ": an oversized request was served";
    EXPECT_GE(run.outstanding_at_end, 1) << "seed " << run.seed;
  }
}

TEST(KlLivenessRunner, HoldersSurviveTransientFaultPhase) {
  // The JSON-artifact configuration of bench_klliveness: hold-forever
  // class + transient fault. After the fault the sessions resync, the
  // holders re-acquire, and the census re-stabilizes.
  ScenarioSpec spec;
  spec.name = "klliveness_fault_pin";
  spec.topologies = {TopologySpec::tree_balanced(2, 2)};
  spec.kl = {{2, 4}};
  spec.workload.classes.push_back(proto::BehaviorClass::holders("I", 2, 1));
  spec.workload.base.think = proto::Dist::exponential(64);
  spec.workload.base.cs_duration = proto::Dist::exponential(32);
  spec.horizon = 400'000;
  spec.fault = ScenarioSpec::FaultKind::kTransient;
  spec.seeds = 2;
  spec.base_seed = 920;

  std::vector<RunResult> results = ExperimentRunner(2).run(spec);
  for (const RunResult& run : results) {
    EXPECT_TRUE(run.fault_injected);
    EXPECT_TRUE(run.recovered) << "seed " << run.seed;
    EXPECT_GT(run.recovery_time, 0u) << "seed " << run.seed;
  }
}

}  // namespace
}  // namespace klex::exp
