// The protocol ladder of Section 3 as observable behavior differences.
#include <gtest/gtest.h>

#include "api/system.hpp"
#include "api/workload_driver.hpp"
#include "proto/workload.hpp"

namespace klex {
namespace {

std::int64_t grants_under(proto::Features features, std::uint64_t seed) {
  SystemConfig config;
  config.tree = tree::balanced(2, 2);
  config.k = 2;
  config.l = 3;
  config.features = features;
  config.seed = seed;
  System system(config);
  if (features.controller) {
    EXPECT_NE(system.run_until_stabilized(4'000'000), sim::kTimeInfinity);
  }
  proto::NodeBehavior behavior;
  behavior.think = proto::Dist::exponential(64);
  behavior.cs_duration = proto::Dist::exponential(32);
  behavior.need = proto::Dist::uniform(1, 2);
  WorkloadDriver driver(system.engine(), system.clients(),
                               proto::uniform_behaviors(system.n(), behavior),
                               support::Rng(seed ^ 0xCAFE));
  driver.begin();
  system.run_until(system.engine().now() + 2'000'000);
  return driver.total_grants();
}

TEST(Ladder, AllRungsWithPusherMakeProgress) {
  EXPECT_GT(grants_under(proto::Features::with_pusher(), 61), 50);
  EXPECT_GT(grants_under(proto::Features::with_priority(), 62), 50);
  EXPECT_GT(grants_under(proto::Features::full(), 63), 50);
}

TEST(Ladder, FeatureNamesAreStable) {
  EXPECT_STREQ(proto::Features::naive().name(), "naive");
  EXPECT_STREQ(proto::Features::with_pusher().name(), "pusher");
  EXPECT_STREQ(proto::Features::with_priority().name(), "pusher+priority");
  EXPECT_STREQ(proto::Features::full().name(), "full");
}

TEST(Ladder, ControllerRequiresLowerRungs) {
  SystemConfig config;
  config.tree = tree::line(3);
  config.features = proto::Features{false, false, true};
  EXPECT_THROW(System{config}, std::invalid_argument);
}

TEST(Ladder, NonControllerRungsSeedTokensImplicitly) {
  SystemConfig config;
  config.tree = tree::line(3);
  config.k = 1;
  config.l = 2;
  config.features = proto::Features::with_priority();
  config.seed_tokens = false;  // forced on internally
  System system(config);
  system.run_until(50'000);
  EXPECT_EQ(system.census().resource(), 2);
  EXPECT_EQ(system.census().pusher, 1);
  EXPECT_EQ(system.census().priority(), 1);
}

TEST(Ladder, NonControllerRungsCannotRecoverFromTokenLoss) {
  // Sanity check of WHY the controller exists: the pusher+priority rung
  // cannot replace lost tokens.
  SystemConfig config;
  config.tree = tree::line(3);
  config.k = 1;
  config.l = 2;
  config.features = proto::Features::with_priority();
  config.seed = 64;
  System system(config);
  system.run_until(50'000);
  system.engine().clear_channels();  // all free tokens gone
  system.run_until(system.engine().now() + 500'000);
  EXPECT_EQ(system.census().resource(), 0);
  // A request now starves forever.
  system.request(1, 1);
  system.run_until(system.engine().now() + 500'000);
  EXPECT_EQ(system.state_of(1), proto::AppState::kReq);
}

TEST(Ladder, FullRungRecoversFromTheSameLoss) {
  SystemConfig config;
  config.tree = tree::line(3);
  config.k = 1;
  config.l = 2;
  config.features = proto::Features::full();
  config.seed = 65;
  System system(config);
  ASSERT_NE(system.run_until_stabilized(2'000'000), sim::kTimeInfinity);
  system.engine().clear_channels();
  system.request(1, 1);
  system.run_until(system.engine().now() + 4'000'000);
  EXPECT_EQ(system.state_of(1), proto::AppState::kIn);
}

}  // namespace
}  // namespace klex
