// Robustness scenarios beyond the paper's explicit claims: conservation
// on the ring baseline, CMAX violations, faults during recovery, and
// saturated contention.
#include <gtest/gtest.h>

#include "api/system.hpp"
#include "proto/messages.hpp"
#include "api/workload_driver.hpp"
#include "proto/workload.hpp"
#include "ring/ring_system.hpp"
#include "verify/conservation.hpp"
#include "verify/safety_monitor.hpp"

namespace klex {
namespace {

TEST(Robustness, RingConservesTokensEventByEvent) {
  ring::RingConfig config;
  config.n = 8;
  config.k = 2;
  config.l = 3;
  config.seed = 1111;
  ring::RingSystem system(config);
  verify::ConservationChecker checker(config.l,
                                      [&system] { return system.census(); });
  system.add_observer(&checker);
  ASSERT_NE(system.run_until_stabilized(4'000'000), sim::kTimeInfinity);

  proto::NodeBehavior behavior;
  behavior.think = proto::Dist::exponential(48);
  behavior.cs_duration = proto::Dist::exponential(24);
  behavior.need = proto::Dist::uniform(1, 2);
  WorkloadDriver driver(system.engine(), system.clients(),
                               proto::uniform_behaviors(config.n, behavior),
                               support::Rng(1112));
  driver.begin();
  checker.arm();
  system.run_until(system.engine().now() + 500'000);
  EXPECT_GT(checker.events_checked(), 10'000u);
  EXPECT_TRUE(checker.clean());
  EXPECT_GT(driver.total_grants(), 100);
}

TEST(Robustness, CmaxViolationWithRandomGarbageStillRecovers) {
  // The myC domain is sized for CMAX = 1; flood with 8 garbage messages
  // per channel. Random garbage does not chase the root's counter, so
  // counter flushing still converges (E12 quantifies this).
  SystemConfig config;
  config.tree = tree::line(6);
  config.k = 1;
  config.l = 2;
  config.cmax = 1;
  config.seed = 1113;
  System system(config);
  ASSERT_NE(system.run_until_stabilized(4'000'000), sim::kTimeInfinity);

  support::Rng rng(1114);
  system.engine().clear_channels();
  proto::MessageDomains domains;
  domains.myc_modulus = core::myc_modulus(system.n(), config.cmax);
  domains.l = config.l;
  for (tree::NodeId v = 0; v < system.n(); ++v) {
    for (int c = 0; c < system.topology().degree(v); ++c) {
      for (int g = 0; g < 8; ++g) {
        system.engine().inject_message(v, c,
                                       proto::random_message(domains, rng));
      }
    }
  }
  ASSERT_NE(system.run_until_stabilized(system.engine().now() + 80'000'000),
            sim::kTimeInfinity);
  EXPECT_TRUE(system.token_counts_correct());
}

TEST(Robustness, FaultDuringRecoveryStillConverges) {
  SystemConfig config;
  config.tree = tree::balanced(2, 2);
  config.k = 2;
  config.l = 3;
  config.seed = 1115;
  System system(config);
  ASSERT_NE(system.run_until_stabilized(4'000'000), sim::kTimeInfinity);

  support::Rng rng(1116);
  system.inject_transient_fault(rng);
  // Interrupt the recovery part-way with a second fault, repeatedly.
  for (int i = 0; i < 3; ++i) {
    system.run_until(system.engine().now() + 700);  // mid-recovery
    system.inject_transient_fault(rng);
  }
  ASSERT_NE(system.run_until_stabilized(system.engine().now() + 80'000'000),
            sim::kTimeInfinity);
  EXPECT_TRUE(system.token_counts_correct());
}

TEST(Robustness, SaturatedContentionStaysSafeAndLive) {
  // Every process permanently re-requests k units: maximal contention.
  SystemConfig config;
  config.tree = tree::balanced(2, 3);  // 15 nodes
  config.k = 2;
  config.l = 3;
  config.seed = 1117;
  System system(config);
  verify::SafetyMonitor safety(system.n(), config.k, config.l);
  system.add_listener(&safety);
  ASSERT_NE(system.run_until_stabilized(4'000'000), sim::kTimeInfinity);

  proto::NodeBehavior behavior;
  behavior.think = proto::Dist::fixed(0);
  behavior.cs_duration = proto::Dist::fixed(16);
  behavior.need = proto::Dist::fixed(2);
  WorkloadDriver driver(system.engine(), system.clients(),
                               proto::uniform_behaviors(system.n(), behavior),
                               support::Rng(1118));
  driver.begin();
  system.run_until(system.engine().now() + 3'000'000);

  EXPECT_FALSE(safety.any_violation());
  EXPECT_TRUE(system.token_counts_correct());
  // With l=3 and need=2, only one CS fits at a time -- but EVERY node
  // must still get served (fairness under saturation).
  for (proto::NodeId v = 0; v < system.n(); ++v) {
    EXPECT_GT(driver.grants(v), 10) << "node " << v << " starved";
  }
}

TEST(Robustness, ZeroNeedRequestsAreHarmless) {
  SystemConfig config;
  config.tree = tree::line(4);
  config.k = 2;
  config.l = 2;
  config.seed = 1119;
  System system(config);
  ASSERT_NE(system.run_until_stabilized(4'000'000), sim::kTimeInfinity);
  for (int i = 0; i < 10; ++i) {
    system.request(2, 0);  // zero units: enters CS immediately
    ASSERT_EQ(system.state_of(2), proto::AppState::kIn);
    system.release(2);
    ASSERT_EQ(system.state_of(2), proto::AppState::kOut);
  }
  system.run_until(system.engine().now() + 100'000);
  EXPECT_TRUE(system.token_counts_correct());
}

TEST(Robustness, PausedSimulationResumesIdentically) {
  // run_until in many small steps must equal one big step (no hidden
  // wall-clock or scheduling state).
  auto run = [](bool chopped) {
    SystemConfig config;
    config.tree = tree::figure1_tree();
    config.k = 2;
    config.l = 3;
    config.seed = 1120;
    System system(config);
    system.run_until_stabilized(4'000'000);
    sim::SimTime start = system.engine().now();
    if (chopped) {
      for (int i = 0; i < 100; ++i) {
        system.run_until(start + (i + 1) * 1000);
      }
    } else {
      system.run_until(start + 100'000);
    }
    return system.engine().messages_delivered();
  };
  EXPECT_EQ(run(true), run(false));
}

}  // namespace
}  // namespace klex
