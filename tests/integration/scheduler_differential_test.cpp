// Differential test for the calendar-queue scheduler: an engine on
// SchedulerKind::kCalendar must be bit-identical to one on
// SchedulerKind::kBinaryHeap -- same seeds produce the same event order,
// hence the same delivery trace, the same message counters and the same
// census-transition timestamps -- across the tree, ring and graph
// topologies, through workload churn and both transient-fault flavors.
// This is the pin behind "replace the heap without perturbing a single
// committed trajectory": the two schedulers may only differ in their
// SchedulerCounters and wall-clock.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "api/builder.hpp"
#include "exp/scenario.hpp"
#include "proto/workload.hpp"

namespace klex {
namespace {

/// Records the exact delivery order: (at, node, channel, type) per event.
class DeliveryTrace : public sim::SimObserver {
 public:
  struct Entry {
    sim::SimTime at;
    sim::NodeId node;
    int channel;
    std::int32_t type;

    friend bool operator==(const Entry&, const Entry&) = default;
  };

  void on_deliver(sim::SimTime at, sim::NodeId to, int channel,
                  const sim::Message& msg) override {
    entries_.push_back(Entry{at, to, channel, msg.type});
  }

  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<Entry> entries_;
};

struct DifferentialParam {
  const char* name;
  exp::TopologySpec topology;
  FaultKind fault;
};

Session build_session(const DifferentialParam& param,
                      sim::SchedulerKind scheduler) {
  proto::WorkloadSpec workload;
  workload.base.think = proto::Dist::exponential(48);
  workload.base.cs_duration = proto::Dist::exponential(24);
  workload.base.need = proto::Dist::uniform(1, 2);
  return SystemBuilder()
      .topology(param.topology)
      .kl(2, 4)
      .cmax(3)
      .seed(1337)
      .scheduler(scheduler)
      .workload(workload)
      .fault(param.fault)
      .build_session();
}

class SchedulerDifferentialTest
    : public ::testing::TestWithParam<DifferentialParam> {};

TEST_P(SchedulerDifferentialTest, CalendarMatchesHeapBitForBit) {
  const DifferentialParam& param = GetParam();
  Session calendar = build_session(param, sim::SchedulerKind::kCalendar);
  Session heap = build_session(param, sim::SchedulerKind::kBinaryHeap);
  ASSERT_EQ(calendar.system->engine().scheduler(),
            sim::SchedulerKind::kCalendar);
  ASSERT_EQ(heap.system->engine().scheduler(),
            sim::SchedulerKind::kBinaryHeap);

  DeliveryTrace calendar_trace;
  DeliveryTrace heap_trace;
  calendar.system->add_observer(&calendar_trace);
  heap.system->add_observer(&heap_trace);

  // Phase 1: boot to stabilization. The returned time is the exact
  // census-transition timestamp, so equality here pins the detection
  // path, not just the final state.
  sim::SimTime calendar_stab = calendar.system->run_until_stabilized(
      10'000'000);
  sim::SimTime heap_stab = heap.system->run_until_stabilized(10'000'000);
  ASSERT_NE(calendar_stab, sim::kTimeInfinity) << param.name;
  EXPECT_EQ(calendar_stab, heap_stab) << param.name;

  // Phase 2: workload churn (deliveries, timers and callback events all
  // in flight together).
  calendar.begin_workload();
  heap.begin_workload();
  calendar.system->run_until(calendar.system->engine().now() + 200'000);
  heap.system->run_until(heap.system->engine().now() + 200'000);

  // Phase 3: the planned fault, then recovery. The fault rng is seeded
  // identically on both sides.
  support::Rng calendar_rng(0xFA17u);
  support::Rng heap_rng(0xFA17u);
  sim::SimTime calendar_fault_at = calendar.system->engine().now();
  calendar.apply_planned_fault(calendar_rng);
  heap.apply_planned_fault(heap_rng);
  sim::SimTime calendar_rec = calendar.system->run_until_stabilized(
      calendar_fault_at + 80'000'000);
  sim::SimTime heap_rec = heap.system->run_until_stabilized(
      calendar_fault_at + 80'000'000);
  ASSERT_NE(calendar_rec, sim::kTimeInfinity) << param.name;
  EXPECT_EQ(calendar_rec, heap_rec) << param.name;

  // Bit-identical trajectories: every delivery in the same order with
  // the same timestamp, and every cumulative counter equal.
  const sim::EngineStats calendar_stats = calendar.system->engine().stats();
  const sim::EngineStats heap_stats = heap.system->engine().stats();
  EXPECT_EQ(calendar_stats.events_executed, heap_stats.events_executed);
  EXPECT_EQ(calendar_stats.messages_sent, heap_stats.messages_sent);
  EXPECT_EQ(calendar_stats.messages_delivered, heap_stats.messages_delivered);
  EXPECT_EQ(calendar_stats.max_heap_size, heap_stats.max_heap_size);
  EXPECT_EQ(calendar.system->engine().now(), heap.system->engine().now());
  ASSERT_EQ(calendar_trace.entries().size(), heap_trace.entries().size());
  EXPECT_TRUE(calendar_trace.entries() == heap_trace.entries())
      << param.name << ": delivery traces diverged";

  // The heap engine must not have touched the calendar ring; the
  // calendar engine must have actually used it (the loaded phases of
  // this run are far past the sparse threshold).
  EXPECT_EQ(heap_stats.scheduler.bucket_inserts, 0u);
  EXPECT_EQ(heap_stats.scheduler.bucket_scans, 0u);
  EXPECT_GT(heap_stats.scheduler.overflow_pushes, 0u);
  EXPECT_GT(calendar_stats.scheduler.bucket_inserts, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, SchedulerDifferentialTest,
    ::testing::Values(
        DifferentialParam{"tree_transient",
                          exp::TopologySpec::tree_random(24, 3),
                          FaultKind::kTransient},
        DifferentialParam{"tree_wipe",
                          exp::TopologySpec::tree_random(24, 3),
                          FaultKind::kChannelWipe},
        DifferentialParam{"ring_transient", exp::TopologySpec::ring(16),
                          FaultKind::kTransient},
        DifferentialParam{"ring_wipe", exp::TopologySpec::ring(16),
                          FaultKind::kChannelWipe},
        DifferentialParam{"graph_transient",
                          exp::TopologySpec::graph_random(20, 12, 7),
                          FaultKind::kTransient},
        DifferentialParam{"graph_wipe",
                          exp::TopologySpec::graph_random(20, 12, 7),
                          FaultKind::kChannelWipe}),
    [](const ::testing::TestParamInfo<DifferentialParam>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace klex
