// Regression test for the poll-granularity bug: run_until_stabilized used
// to poll the census every `poll` ticks and report the first *poll* that
// saw it correct, so the returned time was quantized up to a full poll
// interval late. The event-driven rewrite must return the exact simulated
// time of the census transition. The runs below are hand-traced: the
// harness injects the final missing token at a chosen off-grid instant,
// which is the moment the census (which counts in-flight messages from
// the send) becomes correct.
#include <gtest/gtest.h>

#include "api/system.hpp"
#include "proto/messages.hpp"

namespace klex {
namespace {

TEST(StabilizationTime, ReportsExactOffGridTransitionTime) {
  // No controller and manual tokens: nothing mints, so the census is
  // wrong (0/0/0 of 1/1/1) until this test injects tokens by hand.
  SystemConfig config;
  config.tree = tree::line(2);
  config.k = 1;
  config.l = 1;
  config.features = proto::Features::with_priority();
  config.manual_tokens = true;
  config.seed = 5;
  System system(config);

  // Two of three token kinds from the start ...
  system.engine().inject_message(0, 0, proto::make_pusher());
  system.engine().inject_message(0, 0, proto::make_priority());
  // ... and the last resource token appears at t = 137, off the 64-tick
  // poll grid (the polling loop would have reported 192).
  const sim::SimTime kTransition = 137;
  system.engine().schedule(kTransition, [&system] {
    system.engine().inject_message(0, 0, proto::make_resource());
  });

  sim::SimTime reported =
      system.run_until_stabilized(/*deadline=*/10'000, /*poll=*/64,
                                  /*consecutive=*/3);
  EXPECT_EQ(reported, kTransition);
  EXPECT_NE(reported % 64, 0u) << "a poll-grid answer means quantization";
  // Confirmation (the 192-tick window) costs simulated time, but the
  // *reported* stabilization instant is the transition edge itself.
  EXPECT_GE(system.engine().now(), kTransition + 3 * 64);
}

TEST(StabilizationTime, LegitimateStartReportsTimeZero) {
  // Seeded controller-free rung: the root mints the exact population
  // during on_start(), i.e. the census is correct from t = 0 and nothing
  // ever disturbs it (no controller to re-mint). The poll loop reported
  // 64 (its first poll); the edge consumer must report 0. (The *full*
  // protocol does not qualify: its first circulation ends before the
  // seeded tokens complete a loop, reads a zero census, and mints a
  // duplicate population that takes a reset to drain.)
  SystemConfig config;
  config.tree = tree::balanced(2, 2);
  config.k = 2;
  config.l = 3;
  config.features = proto::Features::with_priority();
  config.seed = 8;
  System system(config);

  EXPECT_EQ(system.run_until_stabilized(1'000'000), 0u);
  EXPECT_TRUE(system.token_counts_correct());
}

TEST(StabilizationTime, WindowThatCannotFitBeforeDeadlineFails) {
  SystemConfig config;
  config.tree = tree::line(2);
  config.k = 1;
  config.l = 1;
  config.features = proto::Features::with_priority();
  config.manual_tokens = true;
  config.seed = 5;
  System system(config);
  system.engine().inject_message(0, 0, proto::make_pusher());
  system.engine().inject_message(0, 0, proto::make_priority());
  system.engine().schedule(137, [&system] {
    system.engine().inject_message(0, 0, proto::make_resource());
  });

  // The census turns correct at 137, but the 192-tick confirmation window
  // cannot complete before the deadline at 200: not stabilized.
  EXPECT_EQ(system.run_until_stabilized(/*deadline=*/200), sim::kTimeInfinity);
  // The clock still lands on the deadline, like the poll loop left it.
  EXPECT_EQ(system.engine().now(), 200u);
}

}  // namespace
}  // namespace klex
