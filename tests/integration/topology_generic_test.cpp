// The unification acceptance test: tree, ring and arbitrary-graph
// (spanning-tree composition) scenarios all run through the shared
// klex::SystemBase -- same workload driver, same monitors, same census,
// same fault-injection path -- with no topology-specific glue.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "api/workload_driver.hpp"
#include "api/graph_system.hpp"
#include "api/system.hpp"
#include "ring/ring_system.hpp"
#include "stats/waiting_time.hpp"
#include "stree/graph.hpp"
#include "verify/safety_monitor.hpp"

namespace klex {
namespace {

std::unique_ptr<SystemBase> make_tree_system(std::uint64_t seed) {
  SystemConfig config;
  config.tree = tree::balanced(2, 2);  // n = 7
  config.k = 2;
  config.l = 3;
  config.seed = seed;
  return std::make_unique<System>(config);
}

std::unique_ptr<SystemBase> make_ring_system(std::uint64_t seed) {
  ring::RingConfig config;
  config.n = 7;
  config.k = 2;
  config.l = 3;
  config.seed = seed;
  return std::make_unique<ring::RingSystem>(config);
}

std::unique_ptr<SystemBase> make_graph_system(std::uint64_t seed) {
  GraphSystemConfig config;
  config.graph = stree::grid(3, 3);  // n = 9, cyclic mesh
  config.k = 2;
  config.l = 3;
  config.seed = seed;
  return std::make_unique<GraphSystem>(std::move(config));
}

using SystemFactory = std::unique_ptr<SystemBase> (*)(std::uint64_t);

class TopologyGeneric : public ::testing::TestWithParam<SystemFactory> {};

TEST_P(TopologyGeneric, StabilizesServesAndSurvivesFaults) {
  std::unique_ptr<SystemBase> system = GetParam()(21);
  int n = system->n();

  // Phase 1: bootstrap to the legitimate token population.
  ASSERT_NE(system->run_until_stabilized(10'000'000), sim::kTimeInfinity);
  EXPECT_TRUE(system->token_counts_correct());

  // Phase 2: a uniform closed-loop workload is served safely.
  stats::WaitingTimeTracker waits(n);
  verify::SafetyMonitor safety(n, system->k(), system->l());
  system->add_listener(&waits);
  system->add_listener(&safety);

  proto::NodeBehavior behavior;
  behavior.think = proto::Dist::exponential(96);
  behavior.cs_duration = proto::Dist::exponential(48);
  behavior.need = proto::Dist::uniform(1, system->k());
  WorkloadDriver driver(system->engine(), system->clients(),
                               proto::uniform_behaviors(n, behavior),
                               support::Rng(77));
  driver.begin();
  system->run_until(system->engine().now() + 1'500'000);
  EXPECT_GT(driver.total_grants(), 0) << "workload starved";
  EXPECT_FALSE(safety.any_violation());

  // Phase 3: transient fault, then self-stabilization.
  support::Rng fault_rng(5);
  system->inject_transient_fault(fault_rng);
  driver.resync();
  sim::SimTime recovered = system->run_until_stabilized(
      system->engine().now() + 40'000'000);
  EXPECT_NE(recovered, sim::kTimeInfinity) << "never re-stabilized";
  EXPECT_TRUE(system->token_counts_correct());
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, TopologyGeneric,
                         ::testing::Values(&make_tree_system,
                                           &make_ring_system,
                                           &make_graph_system));

TEST(GraphSystem, ComposesSpanningTreeWithExclusion) {
  GraphSystemConfig config;
  config.graph = stree::grid(4, 4);
  config.k = 2;
  config.l = 5;
  config.seed = 11;
  GraphSystem system(std::move(config));

  // The overlay is a genuine BFS spanning tree of the mesh: n-1 edges,
  // every tree edge is a graph edge, depths are BFS distances.
  const tree::Tree& overlay = system.overlay_tree();
  ASSERT_EQ(overlay.size(), 16);
  for (tree::NodeId v = 1; v < overlay.size(); ++v) {
    EXPECT_TRUE(system.graph().has_edge(v, overlay.parent(v)))
        << "overlay edge " << v << "-" << overlay.parent(v)
        << " is not a physical link";
  }
  EXPECT_LT(system.spanning_tree_converged_at(), 4'000'000u);

  ASSERT_NE(system.run_until_stabilized(10'000'000), sim::kTimeInfinity);
  system.request(10, 2);
  system.run_until(system.engine().now() + 400'000);
  EXPECT_EQ(system.state_of(10), proto::AppState::kIn);
  system.release(10);
  system.run_until(system.engine().now() + 400'000);
  EXPECT_EQ(system.state_of(10), proto::AppState::kOut);
}

TEST(GraphSystem, DeterministicPerSeed) {
  auto fingerprint = [](std::uint64_t seed) {
    GraphSystemConfig config;
    config.graph = stree::cycle_graph(8);
    config.k = 1;
    config.l = 2;
    config.seed = seed;
    GraphSystem system(std::move(config));
    sim::SimTime stabilized = system.run_until_stabilized(10'000'000);
    return std::pair{stabilized, system.engine().messages_delivered()};
  };
  EXPECT_EQ(fingerprint(31), fingerprint(31));
  EXPECT_NE(fingerprint(31), fingerprint(32));
}

TEST(GraphSystem, RandomConnectedGraphsExtractAndStabilize) {
  support::Rng topo_rng(9);
  for (int trial = 0; trial < 3; ++trial) {
    GraphSystemConfig config;
    config.graph = stree::random_connected(12, 6, topo_rng);
    config.k = 1;
    config.l = 2;
    config.seed = 100 + static_cast<std::uint64_t>(trial);
    GraphSystem system(std::move(config));
    EXPECT_NE(system.run_until_stabilized(10'000'000), sim::kTimeInfinity)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace klex
