// Fault-recovery property sweep: whatever in-domain corruption is
// injected (memory + channels), the system re-stabilizes and then serves
// requests safely. This is Theorem 1 exercised across many random faults.
#include <gtest/gtest.h>

#include "api/system.hpp"
#include "proto/messages.hpp"
#include "api/workload_driver.hpp"
#include "proto/workload.hpp"
#include "verify/convergence.hpp"

namespace klex {
namespace {

class FaultRecoveryTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultRecoveryTest, RandomCorruptionAlwaysRecovers) {
  std::uint64_t seed = GetParam();
  SystemConfig config;
  config.tree = tree::balanced(2, 2);
  config.k = 2;
  config.l = 3;
  config.cmax = 4;
  config.seed = seed;
  System system(config);
  ASSERT_NE(system.run_until_stabilized(4'000'000), sim::kTimeInfinity);

  support::Rng fault_rng(seed * 2654435761u + 1);
  system.inject_transient_fault(fault_rng);
  sim::SimTime recovered =
      system.run_until_stabilized(system.engine().now() + 40'000'000);
  ASSERT_NE(recovered, sim::kTimeInfinity) << "seed " << seed;

  // The census must hold for an extended suffix after recovery.
  verify::ConvergenceTracker tracker(config.l);
  for (int poll = 0; poll < 100; ++poll) {
    system.run_until(system.engine().now() + 1000);
    tracker.poll(system.census(), system.engine().now());
  }
  EXPECT_EQ(tracker.incorrect_polls(), 0u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultRecoveryTest,
                         ::testing::Range(std::uint64_t{1},
                                          std::uint64_t{13}));

TEST(FaultRecovery, TargetedAdversarialCorruptions) {
  // Hand-picked nasty configurations beyond random corruption.
  SystemConfig config;
  config.tree = tree::figure1_tree();
  config.k = 2;
  config.l = 3;
  config.seed = 4242;
  System system(config);
  ASSERT_NE(system.run_until_stabilized(4'000'000), sim::kTimeInfinity);

  // (a) Flood a channel with duplicate controllers carrying the reset flag.
  for (int i = 0; i < 4; ++i) {
    proto::CtrlFields f;
    f.c = 1;
    f.r = true;
    system.engine().inject_message(4, 0, proto::make_ctrl(f));
  }
  // (b) Add surplus tokens of every type.
  system.engine().inject_message(1, 1, proto::make_resource());
  system.engine().inject_message(1, 2, proto::make_pusher());
  system.engine().inject_message(0, 1, proto::make_priority());

  ASSERT_NE(system.run_until_stabilized(system.engine().now() + 40'000'000),
            sim::kTimeInfinity);
  EXPECT_TRUE(system.token_counts_correct());

  // The recovered system still serves requests.
  system.request(7, 2);
  system.run_until(system.engine().now() + 1'000'000);
  EXPECT_EQ(system.state_of(7), proto::AppState::kIn);
}

TEST(FaultRecovery, CorruptionDuringLoadRecoversAndResumes) {
  SystemConfig config;
  config.tree = tree::line(6);
  config.k = 2;
  config.l = 3;
  config.seed = 1717;
  System system(config);
  ASSERT_NE(system.run_until_stabilized(4'000'000), sim::kTimeInfinity);

  proto::NodeBehavior behavior;
  behavior.think = proto::Dist::exponential(64);
  behavior.cs_duration = proto::Dist::exponential(32);
  behavior.need = proto::Dist::uniform(1, 2);
  WorkloadDriver driver(system.engine(), system.clients(),
                               proto::uniform_behaviors(system.n(), behavior),
                               support::Rng(1718));
  driver.begin();
  system.run_until(system.engine().now() + 300'000);
  std::int64_t grants_before = driver.total_grants();
  EXPECT_GT(grants_before, 0);

  support::Rng fault_rng(1719);
  system.inject_transient_fault(fault_rng);
  driver.resync();
  ASSERT_NE(system.run_until_stabilized(system.engine().now() + 40'000'000),
            sim::kTimeInfinity);
  sim::SimTime recovered_at = system.engine().now();
  system.run_until(recovered_at + 2'000'000);
  EXPECT_GT(driver.total_grants(), grants_before + 10)
      << "no post-recovery progress";
}

}  // namespace
}  // namespace klex
