// Property sweep: invariants that must hold across the whole parameter
// space (tree shape × size × k × ℓ × seed).
//
//   P1 Token conservation -- once stabilized, every census reads exactly
//      ℓ/1/1 at every poll.
//   P2 Safety -- no safety violation after stabilization.
//   P3 Progress -- the workload keeps being granted.
//   P4 RSet bound -- no process ever reserves more than k tokens.
#include <gtest/gtest.h>

#include <tuple>

#include "api/system.hpp"
#include "api/workload_driver.hpp"
#include "proto/workload.hpp"
#include "verify/safety_monitor.hpp"

namespace klex {
namespace {

using SweepParam = std::tuple<int /*shape*/, int /*kl*/, std::uint64_t>;

tree::Tree make_shape(int shape, std::uint64_t seed) {
  switch (shape) {
    case 0: return tree::line(6);
    case 1: return tree::star(8);
    case 2: return tree::balanced(2, 3);
    case 3: return tree::caterpillar(4, 2);
    default: {
      support::Rng rng(seed * 131 + 7);
      return tree::random_tree(9, rng);
    }
  }
}

std::pair<int, int> make_kl(int kl) {
  switch (kl) {
    case 0: return {1, 1};   // mutual exclusion
    case 1: return {1, 4};   // ℓ-exclusion
    case 2: return {2, 3};
    default: return {3, 5};
  }
}

class SweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SweepTest, StabilizedInvariantsHold) {
  auto [shape, kl, seed] = GetParam();
  auto [k, l] = make_kl(kl);

  SystemConfig config;
  config.tree = make_shape(shape, seed);
  config.k = k;
  config.l = l;
  config.seed = seed;
  System system(config);

  verify::SafetyMonitor safety(system.n(), k, l);
  system.add_listener(&safety);

  sim::SimTime stabilized = system.run_until_stabilized(6'000'000);
  ASSERT_NE(stabilized, sim::kTimeInfinity);

  proto::NodeBehavior behavior;
  behavior.think = proto::Dist::exponential(48);
  behavior.cs_duration = proto::Dist::exponential(24);
  behavior.need = proto::Dist::uniform(1, k);
  WorkloadDriver driver(system.engine(), system.clients(),
                               proto::uniform_behaviors(system.n(), behavior),
                               support::Rng(seed ^ 0x5EED));
  driver.begin();

  // P1 + P4: poll censuses and RSet bounds through the loaded run.
  for (int poll = 0; poll < 60; ++poll) {
    system.run_until(system.engine().now() + 20'000);
    proto::TokenCensus census = system.census();
    ASSERT_TRUE(census.correct(l))
        << "poll " << poll << ": census " << census.resource() << "/"
        << census.pusher << "/" << census.priority();
    for (proto::NodeId v = 0; v < system.n(); ++v) {
      ASSERT_LE(system.node(v).snapshot().rset_size, k)
          << "node " << v << " over-reserved";
    }
  }

  // P2: no safety violations post-stabilization (the monitor only saw the
  // loaded phase, which is entirely post-stabilization).
  EXPECT_FALSE(safety.any_violation());

  // P3: progress.
  EXPECT_GT(driver.total_grants(), 10);
}

std::string sweep_param_name(
    const ::testing::TestParamInfo<SweepParam>& info) {
  static const char* kShapes[] = {"line", "star", "balanced", "caterpillar",
                                  "random"};
  auto [shape, kl, seed] = info.param;
  auto [k, l] = make_kl(kl);
  return std::string(kShapes[shape]) + "_k" + std::to_string(k) + "l" +
         std::to_string(l) + "_s" + std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(
    ShapesKlSeeds, SweepTest,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Range(0, 4),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{2})),
    sweep_param_name);

}  // namespace
}  // namespace klex
