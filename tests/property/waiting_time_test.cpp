// Theorem 2 as a testable property: after stabilization, the measured
// waiting time (CS entries by others between a request and its grant)
// never exceeds ℓ(2n−3)².
#include <gtest/gtest.h>

#include <tuple>

#include "api/system.hpp"
#include "api/workload_driver.hpp"
#include "proto/workload.hpp"
#include "stats/waiting_time.hpp"

namespace klex {
namespace {

using Param = std::tuple<int /*shape*/, std::uint64_t /*seed*/>;

class WaitingTimeBoundTest : public ::testing::TestWithParam<Param> {};

TEST_P(WaitingTimeBoundTest, MeasuredWaitStaysUnderTheorem2Bound) {
  auto [shape, seed] = GetParam();
  tree::Tree t = shape == 0   ? tree::line(6)
                 : shape == 1 ? tree::star(7)
                              : tree::balanced(2, 2);
  const int k = 2;
  const int l = 3;

  SystemConfig config;
  config.tree = t;
  config.k = k;
  config.l = l;
  config.seed = seed;
  System system(config);

  stats::WaitingTimeTracker tracker(system.n());
  system.add_listener(&tracker);
  ASSERT_NE(system.run_until_stabilized(6'000'000), sim::kTimeInfinity);
  tracker.reset_samples();  // measure only the stabilized phase

  // Greedy workload: every process re-requests immediately -- the
  // adversarial pattern behind the worst case.
  proto::NodeBehavior behavior;
  behavior.think = proto::Dist::fixed(1);
  behavior.cs_duration = proto::Dist::fixed(8);
  behavior.need = proto::Dist::uniform(1, k);
  WorkloadDriver driver(system.engine(), system.clients(),
                               proto::uniform_behaviors(system.n(), behavior),
                               support::Rng(seed ^ 0x7A17));
  driver.begin();
  system.run_until(system.engine().now() + 3'000'000);

  ASSERT_GT(tracker.waits().count(), 100u);
  std::int64_t bound = stats::theorem2_bound(t.size(), l);
  EXPECT_LE(tracker.waits().max(), static_cast<double>(bound))
      << "waiting time exceeded the Theorem 2 bound";
}

std::string waiting_param_name(const ::testing::TestParamInfo<Param>& info) {
  static const char* kShapes[] = {"line6", "star7", "balanced"};
  return std::string(kShapes[std::get<0>(info.param)]) + "_s" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    ShapesSeeds, WaitingTimeBoundTest,
    ::testing::Combine(::testing::Range(0, 3),
                       ::testing::Values(std::uint64_t{3}, std::uint64_t{5},
                                         std::uint64_t{8})),
    waiting_param_name);

TEST(WaitingTimeBound, BoundIsNotVacuous) {
  // The measured maximum should be well under the quadratic bound but
  // non-zero: requests do wait behind other entries.
  SystemConfig config;
  config.tree = tree::line(5);
  config.k = 2;
  config.l = 2;
  config.seed = 99;
  System system(config);
  stats::WaitingTimeTracker tracker(system.n());
  system.add_listener(&tracker);
  ASSERT_NE(system.run_until_stabilized(4'000'000), sim::kTimeInfinity);
  tracker.reset_samples();

  proto::NodeBehavior behavior;
  behavior.think = proto::Dist::fixed(1);
  behavior.cs_duration = proto::Dist::fixed(8);
  behavior.need = proto::Dist::fixed(2);
  WorkloadDriver driver(system.engine(), system.clients(),
                               proto::uniform_behaviors(system.n(), behavior),
                               support::Rng(100));
  driver.begin();
  system.run_until(system.engine().now() + 2'000'000);

  ASSERT_GT(tracker.waits().count(), 50u);
  EXPECT_GT(tracker.waits().max(), 0.0);
}

}  // namespace
}  // namespace klex
