#include "proto/census.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "proto/messages.hpp"
#include "sim/engine.hpp"

namespace klex::proto {
namespace {

/// Minimal participant with settable snapshot values.
class FakeParticipant : public ExclusionParticipant {
 public:
  void request(int) override {}
  void release() override {}
  AppState app_state() const override { return AppState::kOut; }
  int need() const override { return 0; }
  LocalSnapshot snapshot() const override { return snap; }
  void corrupt(support::Rng&) override {}
  void epoch_drain() override {}

  void emit_reserved(int delta) { notify_reserved_delta(delta); }
  void emit_priority(int delta) { notify_priority_delta(delta); }

  LocalSnapshot snap;
};

class Sink : public sim::Process {
 public:
  void on_message(int, const sim::Message&) override {}
};

TEST(Census, CountsInFlightByType) {
  sim::Engine engine;
  engine.add_process(std::make_unique<Sink>());
  engine.add_process(std::make_unique<Sink>());
  engine.connect(0, 0, 1, 0);
  engine.inject_message(0, 0, make_resource());
  engine.inject_message(0, 0, make_resource());
  engine.inject_message(0, 0, make_pusher());
  engine.inject_message(0, 0, make_priority());
  engine.inject_message(0, 0, make_ctrl(CtrlFields{}));
  sim::Message junk;
  junk.type = 999;
  engine.inject_message(0, 0, junk);

  TokenCensus census = take_census(engine, {});
  EXPECT_EQ(census.free_resource, 2);
  EXPECT_EQ(census.pusher, 1);
  EXPECT_EQ(census.free_priority, 1);
  EXPECT_EQ(census.control, 1);
  EXPECT_EQ(census.reserved_resource, 0);
  EXPECT_EQ(census.resource(), 2);
}

TEST(Census, CountsReservedAndHeld) {
  sim::Engine engine;
  FakeParticipant a, b;
  a.snap.rset_size = 3;
  a.snap.holds_priority = true;
  b.snap.rset_size = 1;
  TokenCensus census = take_census(engine, {&a, &b});
  EXPECT_EQ(census.reserved_resource, 4);
  EXPECT_EQ(census.held_priority, 1);
  EXPECT_EQ(census.resource(), 4);
  EXPECT_EQ(census.priority(), 1);
}

TEST(CensusTracker, ReadsEngineCountersWithoutWalking) {
  sim::Engine engine;
  engine.add_process(std::make_unique<Sink>());
  engine.add_process(std::make_unique<Sink>());
  engine.connect(0, 0, 1, 0);
  CensusTracker tracker(&engine, /*l=*/2);

  engine.inject_message(0, 0, make_resource());
  engine.inject_message(0, 0, make_resource());
  engine.inject_message(0, 0, make_pusher());
  engine.inject_message(0, 0, make_priority());
  engine.inject_message(0, 0, make_ctrl(CtrlFields{}));
  sim::Message junk;
  junk.type = 999;
  engine.inject_message(0, 0, junk);

  TokenCensus census = tracker.counts();
  EXPECT_EQ(census.free_resource, 2);
  EXPECT_EQ(census.pusher, 1);
  EXPECT_EQ(census.free_priority, 1);
  EXPECT_EQ(census.control, 1);
  EXPECT_TRUE(tracker.correct());
  EXPECT_EQ(engine.stats().in_flight_walks, 0u);

  // Deliveries (into a sink that drops everything) drain the counters.
  engine.run_until(1'000);
  EXPECT_EQ(tracker.counts().free_resource, 0);
  EXPECT_EQ(tracker.counts().pusher, 0);
  EXPECT_FALSE(tracker.correct());

  // clear_channels() zeroes the channel half in one shot.
  engine.inject_message(0, 0, make_resource());
  EXPECT_EQ(tracker.counts().free_resource, 1);
  engine.clear_channels();
  EXPECT_EQ(tracker.counts().free_resource, 0);
}

TEST(CensusTracker, IntegratesParticipantDeltasAndResyncs) {
  sim::Engine engine;
  CensusTracker tracker(&engine, /*l=*/3);
  FakeParticipant a;
  a.attach_deltas(&tracker);

  a.emit_reserved(2);
  a.emit_priority(1);
  EXPECT_EQ(tracker.counts().reserved_resource, 2);
  EXPECT_EQ(tracker.counts().held_priority, 1);
  a.emit_reserved(-2);
  a.emit_priority(-1);
  EXPECT_EQ(tracker.counts().reserved_resource, 0);
  EXPECT_EQ(tracker.counts().held_priority, 0);

  // resync() rebuilds the participant half from snapshots, for sinks
  // attached to already-running systems.
  a.snap.rset_size = 3;
  a.snap.holds_priority = true;
  tracker.resync({&a});
  EXPECT_EQ(tracker.counts().reserved_resource, 3);
  EXPECT_EQ(tracker.counts().held_priority, 1);
}

TEST(CensusTracker, DetachedParticipantNotifiesNothing) {
  sim::Engine engine;
  CensusTracker tracker(&engine, /*l=*/1);
  FakeParticipant a;
  a.attach_deltas(&tracker);
  a.emit_reserved(1);
  a.attach_deltas(nullptr);
  a.emit_reserved(5);  // dropped: no sink attached
  EXPECT_EQ(tracker.counts().reserved_resource, 1);
}

TEST(CensusTracker, SetExpectedPopulationRetargetsThePredicate) {
  sim::Engine engine;
  engine.add_process(std::make_unique<Sink>());
  engine.add_process(std::make_unique<Sink>());
  engine.connect(0, 0, 1, 0);
  CensusTracker tracker(&engine, /*l=*/2);

  // Legitimate full-rung population for l = 2.
  engine.inject_message(0, 0, make_resource());
  engine.inject_message(0, 0, make_resource());
  engine.inject_message(0, 0, make_pusher());
  engine.inject_message(0, 0, make_priority());
  EXPECT_TRUE(tracker.correct());

  // Re-target to l = 3: the same population is now one resource short.
  tracker.set_expected_population(3, Features::full());
  EXPECT_EQ(tracker.l(), 3);
  EXPECT_FALSE(tracker.correct());
  engine.inject_message(0, 0, make_resource());
  EXPECT_TRUE(tracker.correct());

  // Re-target to a reduced rung: the circulating pusher and priority
  // token are now illegitimate surplus.
  tracker.set_expected_population(3, Features::naive());
  EXPECT_FALSE(tracker.correct());
  engine.clear_channels();
  engine.inject_message(0, 0, make_resource());
  engine.inject_message(0, 0, make_resource());
  engine.inject_message(0, 0, make_resource());
  EXPECT_TRUE(tracker.correct());

  EXPECT_THROW(tracker.set_expected_population(0, Features::full()),
               std::invalid_argument);
}

TEST(Census, CorrectPredicate) {
  TokenCensus census;
  census.free_resource = 2;
  census.reserved_resource = 1;
  census.pusher = 1;
  census.held_priority = 1;
  EXPECT_TRUE(census.correct(3));
  EXPECT_FALSE(census.correct(2));
  EXPECT_FALSE(census.correct(4));
  census.pusher = 2;
  EXPECT_FALSE(census.correct(3));
  census.pusher = 1;
  census.free_priority = 1;  // two priority tokens now
  EXPECT_FALSE(census.correct(3));
}

}  // namespace
}  // namespace klex::proto
