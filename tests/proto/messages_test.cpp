#include "proto/messages.hpp"

#include <gtest/gtest.h>

#include "support/check.hpp"

namespace klex::proto {
namespace {

TEST(Messages, PlainTokensRoundTrip) {
  EXPECT_EQ(type_of(make_resource()), TokenType::kResource);
  EXPECT_EQ(type_of(make_pusher()), TokenType::kPusher);
  EXPECT_EQ(type_of(make_priority()), TokenType::kPriority);
}

TEST(Messages, CtrlFieldsRoundTrip) {
  CtrlFields fields;
  fields.c = 123;
  fields.r = true;
  fields.pt = 6;
  fields.ppr = 2;
  sim::Message msg = make_ctrl(fields);
  EXPECT_EQ(type_of(msg), TokenType::kControl);
  CtrlFields back = ctrl_of(msg);
  EXPECT_EQ(back.c, 123);
  EXPECT_TRUE(back.r);
  EXPECT_EQ(back.pt, 6);
  EXPECT_EQ(back.ppr, 2);
}

TEST(Messages, CtrlOfNonCtrlThrows) {
  EXPECT_THROW(ctrl_of(make_resource()), support::CheckFailure);
}

TEST(Messages, NonProtocolDetected) {
  sim::Message junk;
  junk.type = 77;
  EXPECT_FALSE(is_protocol_message(junk));
  EXPECT_TRUE(is_protocol_message(make_pusher()));
  sim::Message zero;
  EXPECT_FALSE(is_protocol_message(zero));
}

TEST(Messages, RandomMessagesAreWellFormed) {
  support::Rng rng(3);
  MessageDomains domains;
  domains.myc_modulus = 29;
  domains.l = 5;
  bool saw_ctrl = false;
  for (int i = 0; i < 500; ++i) {
    sim::Message msg = random_message(domains, rng);
    ASSERT_TRUE(is_protocol_message(msg));
    if (type_of(msg) == TokenType::kControl) {
      saw_ctrl = true;
      CtrlFields fields = ctrl_of(msg);
      EXPECT_GE(fields.c, 0);
      EXPECT_LT(fields.c, 29);
      EXPECT_GE(fields.pt, 0);
      EXPECT_LE(fields.pt, 6);  // l + 1
      EXPECT_GE(fields.ppr, 0);
      EXPECT_LE(fields.ppr, 2);
    }
  }
  EXPECT_TRUE(saw_ctrl);
}

TEST(Messages, RandomMessagesCoverAllTypes) {
  support::Rng rng(9);
  MessageDomains domains;
  domains.myc_modulus = 5;
  domains.l = 2;
  int counts[5] = {0, 0, 0, 0, 0};
  for (int i = 0; i < 1000; ++i) {
    ++counts[static_cast<int>(type_of(random_message(domains, rng)))];
  }
  for (int t = 1; t <= 4; ++t) {
    EXPECT_GT(counts[t], 100) << "type " << t << " under-represented";
  }
}

TEST(Messages, ToStringReadable) {
  EXPECT_EQ(to_string(make_resource()), "ResT");
  EXPECT_EQ(to_string(make_pusher()), "PushT");
  EXPECT_EQ(to_string(make_priority()), "PrioT");
  CtrlFields fields;
  fields.c = 3;
  fields.r = true;
  fields.pt = 2;
  EXPECT_EQ(to_string(make_ctrl(fields)), "ctrl(C=3,R=1,PT=2,PPr=0)");
  sim::Message junk;
  junk.type = 42;
  EXPECT_EQ(to_string(junk), "raw(type=42)");
}

TEST(Messages, TokenTypeNames) {
  EXPECT_STREQ(token_type_name(TokenType::kResource), "ResT");
  EXPECT_STREQ(token_type_name(TokenType::kControl), "ctrl");
}

}  // namespace
}  // namespace klex::proto
