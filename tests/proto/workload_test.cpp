#include "proto/workload.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace klex::proto {
namespace {

TEST(Dist, FixedSamplesConstant) {
  support::Rng rng(1);
  Dist d = Dist::fixed(42);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(d.sample(rng), 42u);
}

TEST(Dist, UniformWithinBounds) {
  support::Rng rng(2);
  Dist d = Dist::uniform(10, 20);
  for (int i = 0; i < 500; ++i) {
    auto v = d.sample(rng);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Dist, ExponentialNonNegative) {
  support::Rng rng(3);
  Dist d = Dist::exponential(50);
  double total = 0;
  for (int i = 0; i < 5000; ++i) total += static_cast<double>(d.sample(rng));
  EXPECT_NEAR(total / 5000, 50.0, 5.0);
}

TEST(Dist, NegativeFixedClampsToZero) {
  support::Rng rng(4);
  EXPECT_EQ(Dist::fixed(-5).sample(rng), 0u);
}

TEST(BehaviorClass, SizeForResolvesPriorityOrder) {
  BehaviorClass cls;
  cls.fraction = 0.5;
  EXPECT_EQ(cls.size_for(10), 5);
  cls.count = 3;
  EXPECT_EQ(cls.size_for(10), 3);
  cls.nodes = {1, 2};
  EXPECT_EQ(cls.size_for(10), 2);
  // Counts never exceed n.
  cls.nodes.clear();
  cls.count = 99;
  EXPECT_EQ(cls.size_for(10), 10);
}

TEST(BehaviorClass, HoldersHelperShapesTheSetI) {
  BehaviorClass holders = BehaviorClass::holders("I", 2, 3);
  EXPECT_EQ(holders.count, 2);
  EXPECT_TRUE(holders.behavior.hold_forever);
  // Unlimited budget: the set I must be able to re-acquire (and camp
  // again) after a transient fault revokes its leases.
  EXPECT_EQ(holders.behavior.max_requests, -1);
  support::Rng rng(1);
  EXPECT_EQ(holders.behavior.need.sample(rng), 3u);
}

TEST(Materialize, ExplicitNodesWin) {
  WorkloadSpec spec;
  BehaviorClass relays = BehaviorClass::relays("relays", 0.0);
  relays.nodes = {0, 3};
  spec.classes = {relays};
  support::Rng rng(7);
  MaterializedWorkload out = materialize(spec, 5, rng);
  ASSERT_EQ(out.behaviors.size(), 5u);
  EXPECT_FALSE(out.behaviors[0].active);
  EXPECT_TRUE(out.behaviors[1].active);
  EXPECT_FALSE(out.behaviors[3].active);
  EXPECT_EQ(out.class_index[0], 0);
  EXPECT_EQ(out.class_index[1], -1);
  EXPECT_EQ(out.class_index[3], 0);
}

TEST(Materialize, CountClassesDrawDeterministically) {
  WorkloadSpec spec;
  spec.classes = {BehaviorClass::holders("I", 3, 1)};
  support::Rng rng_a(11);
  support::Rng rng_b(11);
  MaterializedWorkload a = materialize(spec, 16, rng_a);
  MaterializedWorkload b = materialize(spec, 16, rng_b);
  EXPECT_EQ(a.class_index, b.class_index);
  int members = 0;
  for (int cls : a.class_index) {
    if (cls == 0) ++members;
  }
  EXPECT_EQ(members, 3);
}

TEST(Materialize, FractionRoundsAgainstN) {
  WorkloadSpec spec;
  spec.classes = {BehaviorClass::relays("relays", 0.5)};
  support::Rng rng(13);
  MaterializedWorkload out = materialize(spec, 9, rng);
  int relays = 0;
  for (int cls : out.class_index) {
    if (cls == 0) ++relays;
  }
  EXPECT_EQ(relays, 5);  // llround(0.5 * 9)
}

TEST(Materialize, ClassesSplitDisjointly) {
  WorkloadSpec spec;
  BehaviorClass pinned = BehaviorClass::holders("I", -1, 1);
  pinned.nodes = {2};
  spec.classes = {pinned, BehaviorClass::relays("relays", 0.25),
                  BehaviorClass::budgeted("shots", 4, 2, 1)};
  support::Rng rng(17);
  MaterializedWorkload out = materialize(spec, 12, rng);
  std::vector<int> sizes(3, 0);
  for (int cls : out.class_index) {
    if (cls >= 0) ++sizes[static_cast<std::size_t>(cls)];
  }
  EXPECT_EQ(out.class_index[2], 0);
  EXPECT_EQ(sizes[0], 1);
  EXPECT_EQ(sizes[1], 3);  // llround(0.25 * 12)
  EXPECT_EQ(sizes[2], 4);
}

TEST(Materialize, OversubscriptionIsAnError) {
  WorkloadSpec spec;
  spec.classes = {BehaviorClass::relays("a", 0.6),
                  BehaviorClass::relays("b", 0.6)};
  support::Rng rng(21);
  EXPECT_THROW(materialize(spec, 10, rng), std::invalid_argument);
}

TEST(Materialize, DoubleAssignmentIsAnError) {
  WorkloadSpec spec;
  BehaviorClass a = BehaviorClass::relays("a", 0.0);
  a.nodes = {1};
  BehaviorClass b = BehaviorClass::relays("b", 0.0);
  b.nodes = {1};
  spec.classes = {a, b};
  support::Rng rng(19);
  EXPECT_THROW(materialize(spec, 4, rng), std::invalid_argument);
}

TEST(Materialize, UniformBehaviorsHelper) {
  NodeBehavior proto;
  proto.hold_forever = true;
  std::vector<NodeBehavior> all = uniform_behaviors(4, proto);
  ASSERT_EQ(all.size(), 4u);
  for (const NodeBehavior& b : all) EXPECT_TRUE(b.hold_forever);
}

}  // namespace
}  // namespace klex::proto
