#include "proto/workload.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"

namespace klex::proto {
namespace {

/// RequestPort that grants instantly (or on demand) without a protocol.
class FakePort : public RequestPort {
 public:
  explicit FakePort(int n) : states(static_cast<std::size_t>(n),
                                    AppState::kOut) {}

  void request(NodeId node, int need) override {
    states[static_cast<std::size_t>(node)] = AppState::kReq;
    last_need = need;
    ++requests;
  }

  void release(NodeId node) override {
    states[static_cast<std::size_t>(node)] = AppState::kOut;
    ++releases;
  }

  AppState state_of(NodeId node) const override {
    return states[static_cast<std::size_t>(node)];
  }

  /// Simulates the protocol granting node's request.
  void grant(NodeId node, WorkloadDriver& driver, sim::SimTime at) {
    states[static_cast<std::size_t>(node)] = AppState::kIn;
    driver.on_enter_cs(node, last_need, at);
  }

  std::vector<AppState> states;
  int last_need = 0;
  int requests = 0;
  int releases = 0;
};

TEST(Dist, FixedSamplesConstant) {
  support::Rng rng(1);
  Dist d = Dist::fixed(42);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(d.sample(rng), 42u);
}

TEST(Dist, UniformWithinBounds) {
  support::Rng rng(2);
  Dist d = Dist::uniform(10, 20);
  for (int i = 0; i < 500; ++i) {
    auto v = d.sample(rng);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Dist, ExponentialNonNegative) {
  support::Rng rng(3);
  Dist d = Dist::exponential(50);
  double total = 0;
  for (int i = 0; i < 5000; ++i) total += static_cast<double>(d.sample(rng));
  EXPECT_NEAR(total / 5000, 50.0, 5.0);
}

TEST(Dist, NegativeFixedClampsToZero) {
  support::Rng rng(4);
  EXPECT_EQ(Dist::fixed(-5).sample(rng), 0u);
}

TEST(Workload, ClosedLoopIssuesAndReissues) {
  sim::Engine engine;
  FakePort port(2);
  NodeBehavior behavior;
  behavior.think = Dist::fixed(10);
  behavior.cs_duration = Dist::fixed(5);
  WorkloadDriver driver(engine, port, 1, uniform_behaviors(2, behavior),
                        support::Rng(7));
  driver.begin();
  engine.run_until(10);
  EXPECT_EQ(port.requests, 2);
  EXPECT_EQ(driver.outstanding(), 2);

  // Grant node 0; driver schedules its release after cs_duration.
  port.grant(0, driver, engine.now());
  EXPECT_EQ(driver.outstanding(), 1);
  EXPECT_EQ(driver.grants(0), 1);
  engine.run_until(engine.now() + 5);
  EXPECT_EQ(port.releases, 1);
  // After release + think the driver must re-request.
  driver.on_exit_cs(0, engine.now());
  engine.run_until(engine.now() + 10);
  EXPECT_EQ(driver.requests_issued(0), 2);
}

TEST(Workload, MaxRequestsStopsCycle) {
  sim::Engine engine;
  FakePort port(1);
  NodeBehavior behavior;
  behavior.think = Dist::fixed(1);
  behavior.cs_duration = Dist::fixed(1);
  behavior.max_requests = 3;
  WorkloadDriver driver(engine, port, 1, {behavior}, support::Rng(8));
  driver.begin();
  for (int round = 0; round < 10; ++round) {
    engine.run_until(engine.now() + 2);
    if (port.state_of(0) == AppState::kReq) {
      port.grant(0, driver, engine.now());
      engine.run_until(engine.now() + 2);
      driver.on_exit_cs(0, engine.now());
    }
  }
  EXPECT_EQ(driver.requests_issued(0), 3);
}

TEST(Workload, InactiveNodesNeverRequest) {
  sim::Engine engine;
  FakePort port(2);
  NodeBehavior active;
  NodeBehavior inactive;
  inactive.active = false;
  WorkloadDriver driver(engine, port, 1, {active, inactive},
                        support::Rng(9));
  driver.begin();
  engine.run_until(1000);
  EXPECT_EQ(driver.requests_issued(0), 1);
  EXPECT_EQ(driver.requests_issued(1), 0);
}

TEST(Workload, HoldForeverNeverReleases) {
  sim::Engine engine;
  FakePort port(1);
  NodeBehavior behavior;
  behavior.hold_forever = true;
  behavior.think = Dist::fixed(1);
  WorkloadDriver driver(engine, port, 1, {behavior}, support::Rng(10));
  driver.begin();
  engine.run_until(5);
  port.grant(0, driver, engine.now());
  engine.run_until(engine.now() + 10000);
  EXPECT_EQ(port.releases, 0);
}

TEST(Workload, NeedClampedToK) {
  sim::Engine engine;
  FakePort port(1);
  NodeBehavior behavior;
  behavior.think = Dist::fixed(1);
  behavior.need = Dist::fixed(99);
  WorkloadDriver driver(engine, port, 3, {behavior}, support::Rng(11));
  driver.begin();
  engine.run_until(5);
  EXPECT_EQ(port.last_need, 3);
}

TEST(Workload, ResyncSchedulesReleaseForStuckIn) {
  sim::Engine engine;
  FakePort port(1);
  NodeBehavior behavior;
  behavior.cs_duration = Dist::fixed(7);
  WorkloadDriver driver(engine, port, 1, {behavior}, support::Rng(12));
  // Simulate corruption: node is In but the driver never saw an entry.
  port.states[0] = AppState::kIn;
  driver.resync();
  engine.run_until(20);
  EXPECT_EQ(port.releases, 1);
}

TEST(Workload, ResyncRestartsIdleActiveNodes) {
  sim::Engine engine;
  FakePort port(1);
  NodeBehavior behavior;
  behavior.think = Dist::fixed(3);
  WorkloadDriver driver(engine, port, 1, {behavior}, support::Rng(13));
  // No begin(): resync alone must start the loop for an Out node.
  driver.resync();
  engine.run_until(10);
  EXPECT_EQ(driver.requests_issued(0), 1);
}

TEST(Workload, TotalsAggregate) {
  sim::Engine engine;
  FakePort port(3);
  NodeBehavior behavior;
  behavior.think = Dist::fixed(1);
  WorkloadDriver driver(engine, port, 1, uniform_behaviors(3, behavior),
                        support::Rng(14));
  driver.begin();
  engine.run_until(5);
  EXPECT_EQ(driver.total_requests(), 3);
  port.grant(1, driver, engine.now());
  EXPECT_EQ(driver.total_grants(), 1);
}

}  // namespace
}  // namespace klex::proto
