// White-box tests of the ring baseline's handlers, mirroring the tree's
// handler tests: exact sends and counter updates per message.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "proto/messages.hpp"
#include "ring/ring_process.hpp"
#include "sim/engine.hpp"

namespace klex::ring {
namespace {

class Probe : public sim::Process {
 public:
  void on_message(int, const sim::Message& msg) override {
    received.push_back(msg);
  }
  std::vector<sim::Message> received;
};

class EventLog : public proto::Listener {
 public:
  void on_circulation_end(int resource, int pusher, int priority, bool reset,
                          sim::SimTime) override {
    ++circulations;
    last_resource = resource;
    last_pusher = pusher;
    last_priority = priority;
    last_reset = reset;
  }
  int circulations = 0;
  int last_resource = -1, last_pusher = -1, last_priority = -1;
  bool last_reset = false;
};

/// DUT on a 2-node ring: probe -> dut -> probe (successor).
template <typename ProcessT>
struct Harness {
  Harness(core::Params params, std::int32_t modulus) {
    engine = std::make_unique<sim::Engine>(sim::DelayModel{1, 1}, 1);
    auto process = std::make_unique<ProcessT>(params, modulus, &log);
    dut = process.get();
    engine->add_process(std::move(process));    // node 0
    auto succ = std::make_unique<Probe>();
    successor = succ.get();
    engine->add_process(std::move(succ));       // node 1
    engine->connect(0, 0, 1, 0);                // dut -> successor
    engine->connect(1, 0, 0, 0);                // pred(=probe) -> dut
    engine->start();
    engine->run_until(64);                      // swallow bootstrap
    successor->received.clear();
  }

  void deliver(const sim::Message& msg) {
    engine->send_from(1, 0, msg);
    engine->run_until(engine->now() + 64);
  }

  std::vector<sim::Message> drain() {
    auto out = std::move(successor->received);
    successor->received.clear();
    return out;
  }

  EventLog log;
  std::unique_ptr<sim::Engine> engine;
  ProcessT* dut = nullptr;
  Probe* successor = nullptr;
};

core::Params ring_params(int k, int l, proto::Features features) {
  core::Params params;
  params.k = k;
  params.l = l;
  params.features = features;
  params.timeout_period = 1'000'000;
  return params;
}

TEST(RingRoot, ForwardedResourceCountsSToken) {
  Harness<RingRootProcess> h(ring_params(1, 2, proto::Features::naive()), 5);
  h.deliver(proto::make_resource());
  EXPECT_EQ(h.drain().size(), 1u);
  EXPECT_EQ(h.dut->snapshot().stoken, 1);
}

TEST(RingRoot, ReservedResourceNotCountedUntilCirculationEnd) {
  // Unlike the tree (whose controller misses root reservations without
  // the arrival-count fix), the ring's circulation-end includes the
  // root's whole RSet, so reservations must NOT be counted at arrival.
  Harness<RingRootProcess> h(ring_params(1, 2, proto::Features::naive()), 5);
  h.dut->request(1);
  h.deliver(proto::make_resource());
  EXPECT_EQ(h.dut->snapshot().rset_size, 1);
  EXPECT_EQ(h.dut->snapshot().stoken, 0);
}

TEST(RingRoot, ReleaseCountsForwardedTokens) {
  Harness<RingRootProcess> h(ring_params(2, 3, proto::Features::naive()), 5);
  h.dut->request(2);
  h.deliver(proto::make_resource());
  h.deliver(proto::make_resource());
  ASSERT_EQ(h.dut->app_state(), proto::AppState::kIn);
  h.drain();
  h.dut->release();
  h.engine->run_until(h.engine->now() + 64);
  EXPECT_EQ(h.drain().size(), 2u);
  EXPECT_EQ(h.dut->snapshot().stoken, 2);  // both start new loops
}

TEST(RingRoot, CirculationEndCountsOwnRset) {
  Harness<RingRootProcess> h(ring_params(2, 3, proto::Features::full()), 5);
  h.dut->request(2);
  h.deliver(proto::make_resource());
  ASSERT_EQ(h.dut->snapshot().rset_size, 1);
  // Controller returns with PT=2 from the rest of the ring: resource
  // census = 2 + rset(1) + stoken(0) = 3 = l: no reset, no resource mint.
  // (No pusher passed the root this loop, so SPush=0 and the root tops
  // the pusher up -- that is the deficit path working as intended.)
  h.deliver(proto::make_ctrl(proto::CtrlFields{0, false, 2, 1}));
  EXPECT_EQ(h.log.circulations, 1);
  EXPECT_EQ(h.log.last_resource, 3);
  EXPECT_FALSE(h.log.last_reset);
  auto out = h.drain();
  ASSERT_EQ(out.size(), 2u);  // minted pusher + the next controller
  EXPECT_EQ(proto::type_of(out[0]), proto::TokenType::kPusher);
  EXPECT_EQ(proto::ctrl_of(out[1]).c, 1);
  EXPECT_EQ(proto::ctrl_of(out[1]).pt, 0);  // fresh census
}

TEST(RingRoot, StaleControllerAbsorbed) {
  Harness<RingRootProcess> h(ring_params(1, 2, proto::Features::full()), 5);
  h.deliver(proto::make_ctrl(proto::CtrlFields{3, false, 0, 0}));  // wrong c
  EXPECT_TRUE(h.drain().empty());
  EXPECT_EQ(h.log.circulations, 0);
}

TEST(RingRoot, SurplusTriggersReset) {
  Harness<RingRootProcess> h(ring_params(1, 2, proto::Features::full()), 5);
  h.deliver(proto::make_ctrl(proto::CtrlFields{0, false, 3, 1}));
  EXPECT_TRUE(h.log.last_reset);
  EXPECT_TRUE(h.dut->in_reset());
  // Tokens arriving during reset are erased.
  h.deliver(proto::make_resource());
  auto out = h.drain();
  ASSERT_EQ(out.size(), 1u);  // only the reset controller went out
  EXPECT_TRUE(proto::ctrl_of(out[0]).r);
}

TEST(RingRoot, ResetEndRestoresPopulation) {
  Harness<RingRootProcess> h(ring_params(1, 2, proto::Features::full()), 5);
  h.deliver(proto::make_ctrl(proto::CtrlFields{0, false, 3, 1}));  // reset
  h.drain();
  h.deliver(proto::make_ctrl(proto::CtrlFields{1, true, 0, 0}));   // returns
  EXPECT_FALSE(h.dut->in_reset());
  auto out = h.drain();
  // priority + 2 resource + pusher + controller.
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(proto::type_of(out[0]), proto::TokenType::kPriority);
  EXPECT_EQ(proto::type_of(out.back()), proto::TokenType::kControl);
}

TEST(RingMember, TokensReserveOrForward) {
  Harness<RingMemberProcess> h(ring_params(1, 2, proto::Features::naive()),
                               5);
  h.deliver(proto::make_resource());
  EXPECT_EQ(h.drain().size(), 1u);  // non-requester forwards
  h.dut->request(1);
  h.deliver(proto::make_resource());
  EXPECT_TRUE(h.drain().empty());   // reserved
  EXPECT_EQ(h.dut->app_state(), proto::AppState::kIn);
}

TEST(RingMember, FreshControllerAdoptsAndCounts) {
  Harness<RingMemberProcess> h(ring_params(2, 3, proto::Features::full()),
                               5);
  h.dut->request(2);
  h.deliver(proto::make_resource());
  h.deliver(proto::make_priority());
  ASSERT_TRUE(h.dut->snapshot().holds_priority);
  h.deliver(proto::make_ctrl(proto::CtrlFields{2, false, 1, 0}));
  EXPECT_EQ(h.dut->snapshot().myc, 2);
  auto out = h.drain();
  ASSERT_EQ(out.size(), 1u);
  proto::CtrlFields fields = proto::ctrl_of(out[0]);
  EXPECT_EQ(fields.pt, 2);   // 1 incoming + 1 reserved
  EXPECT_EQ(fields.ppr, 1);  // held priority counted
}

TEST(RingMember, DuplicateControllerFlushedThroughUnchanged) {
  Harness<RingMemberProcess> h(ring_params(2, 3, proto::Features::full()),
                               5);
  h.dut->request(2);
  h.deliver(proto::make_resource());
  h.deliver(proto::make_ctrl(proto::CtrlFields{2, false, 0, 0}));
  h.drain();
  // Same flag again: a duplicate; forwarded verbatim, nothing counted.
  h.deliver(proto::make_ctrl(proto::CtrlFields{2, false, 0, 0}));
  auto out = h.drain();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(proto::ctrl_of(out[0]).pt, 0);
}

TEST(RingMember, ResetFlagErasesTokens) {
  Harness<RingMemberProcess> h(ring_params(2, 3, proto::Features::full()),
                               5);
  h.dut->request(2);
  h.deliver(proto::make_resource());
  h.deliver(proto::make_priority());
  h.deliver(proto::make_ctrl(proto::CtrlFields{4, true, 0, 0}));
  EXPECT_EQ(h.dut->snapshot().rset_size, 0);
  EXPECT_FALSE(h.dut->snapshot().holds_priority);
}

TEST(RingMember, PusherReleasesUnprotectedReservations) {
  Harness<RingMemberProcess> h(
      ring_params(2, 3, proto::Features::with_pusher()), 5);
  h.dut->request(2);
  h.deliver(proto::make_resource());
  ASSERT_EQ(h.dut->snapshot().rset_size, 1);
  h.deliver(proto::make_pusher());
  EXPECT_EQ(h.dut->snapshot().rset_size, 0);
  auto out = h.drain();
  ASSERT_EQ(out.size(), 2u);  // released ResT + forwarded PushT
  EXPECT_EQ(proto::type_of(out[0]), proto::TokenType::kResource);
  EXPECT_EQ(proto::type_of(out[1]), proto::TokenType::kPusher);
}

}  // namespace
}  // namespace klex::ring
