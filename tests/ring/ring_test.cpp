// Ring baseline: the same token machinery on an oriented ring.
#include <gtest/gtest.h>

#include "api/workload_driver.hpp"
#include "proto/workload.hpp"
#include "ring/ring_system.hpp"
#include "verify/safety_monitor.hpp"

namespace klex::ring {
namespace {

TEST(RingModulus, FollowsFormula) {
  EXPECT_EQ(ring_myc_modulus(4, 0), 5);
  EXPECT_EQ(ring_myc_modulus(4, 3), 17);
  EXPECT_THROW(ring_myc_modulus(1, 0), std::invalid_argument);
}

TEST(Ring, BootstrapMintsPopulation) {
  RingConfig config;
  config.n = 6;
  config.k = 2;
  config.l = 3;
  config.seed = 21;
  RingSystem system(config);
  ASSERT_NE(system.run_until_stabilized(2'000'000), sim::kTimeInfinity);
  proto::TokenCensus census = system.census();
  EXPECT_EQ(census.resource(), 3);
  EXPECT_EQ(census.pusher, 1);
  EXPECT_EQ(census.priority(), 1);
}

TEST(Ring, SingleRequestGranted) {
  RingConfig config;
  config.n = 5;
  config.k = 2;
  config.l = 2;
  config.seed = 22;
  RingSystem system(config);
  ASSERT_NE(system.run_until_stabilized(2'000'000), sim::kTimeInfinity);
  system.request(3, 2);
  system.run_until(system.engine().now() + 200'000);
  EXPECT_EQ(system.state_of(3), proto::AppState::kIn);
  system.release(3);
  system.run_until(system.engine().now() + 10'000);
  EXPECT_EQ(system.state_of(3), proto::AppState::kOut);
  EXPECT_TRUE(system.token_counts_correct());
}

TEST(Ring, WorkloadRunsSafely) {
  RingConfig config;
  config.n = 8;
  config.k = 2;
  config.l = 4;
  config.seed = 23;
  RingSystem system(config);
  verify::SafetyMonitor safety(config.n, config.k, config.l);
  system.add_listener(&safety);
  ASSERT_NE(system.run_until_stabilized(2'000'000), sim::kTimeInfinity);

  proto::NodeBehavior behavior;
  behavior.think = proto::Dist::exponential(32);
  behavior.cs_duration = proto::Dist::exponential(24);
  behavior.need = proto::Dist::uniform(1, 2);
  WorkloadDriver driver(system.engine(), system.clients(),
                               proto::uniform_behaviors(config.n, behavior),
                               support::Rng(24));
  driver.begin();
  system.run_until(system.engine().now() + 2'000'000);

  EXPECT_GT(driver.total_grants(), 50);
  EXPECT_FALSE(safety.any_violation());
  EXPECT_TRUE(system.token_counts_correct());
}

TEST(Ring, RecoversFromTransientFault) {
  RingConfig config;
  config.n = 6;
  config.k = 2;
  config.l = 3;
  config.cmax = 3;
  config.seed = 25;
  RingSystem system(config);
  ASSERT_NE(system.run_until_stabilized(2'000'000), sim::kTimeInfinity);

  support::Rng fault_rng(26);
  for (int fault = 0; fault < 3; ++fault) {
    system.inject_transient_fault(fault_rng);
    ASSERT_NE(
        system.run_until_stabilized(system.engine().now() + 20'000'000),
        sim::kTimeInfinity)
        << "fault " << fault;
    EXPECT_TRUE(system.token_counts_correct());
  }
}

TEST(Ring, SurplusResourcePurged) {
  RingConfig config;
  config.n = 5;
  config.k = 1;
  config.l = 2;
  config.seed = 27;
  RingSystem system(config);
  ASSERT_NE(system.run_until_stabilized(2'000'000), sim::kTimeInfinity);
  system.engine().inject_message(2, 0, proto::make_resource());
  system.engine().inject_message(3, 0, proto::make_resource());
  ASSERT_NE(system.run_until_stabilized(system.engine().now() + 10'000'000),
            sim::kTimeInfinity);
  EXPECT_EQ(system.census().resource(), 2);
}

TEST(Ring, SeededStartWorks) {
  RingConfig config;
  config.n = 4;
  config.k = 1;
  config.l = 1;
  config.seed_tokens = true;
  config.seed = 28;
  RingSystem system(config);
  ASSERT_NE(system.run_until_stabilized(2'000'000), sim::kTimeInfinity);
  system.request(2, 1);
  system.run_until(system.engine().now() + 100'000);
  EXPECT_EQ(system.state_of(2), proto::AppState::kIn);
}

TEST(Ring, NonControllerLadderAlsoServes) {
  RingConfig config;
  config.n = 5;
  config.k = 2;
  config.l = 3;
  config.features = proto::Features::with_priority();
  config.seed = 29;
  RingSystem system(config);
  system.request(1, 2);
  system.request(4, 2);
  system.run_until(400'000);
  int served = (system.state_of(1) == proto::AppState::kIn ? 1 : 0) +
               (system.state_of(4) == proto::AppState::kIn ? 1 : 0);
  EXPECT_GE(served, 1);
}

TEST(Ring, RejectsBadConfig) {
  RingConfig config;
  config.n = 1;
  EXPECT_THROW(RingSystem{config}, std::invalid_argument);
  config.n = 3;
  config.k = 3;
  config.l = 2;
  EXPECT_THROW(RingSystem{config}, std::invalid_argument);
}

}  // namespace
}  // namespace klex::ring
