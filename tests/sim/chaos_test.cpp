// Tests for sim::ChaosModel -- the per-link adversarial channel layer.
//
// Pinned here:
//   * engines without a chaos model (or with the all-zero config, which
//     the builder refuses to attach) take the stock code paths;
//   * drop / duplicate / reorder / jitter semantics, one knob at a time
//     at probability 1 so the behavior is exact, not statistical;
//   * held-back messages stay in the in-flight census (the census is the
//     stabilization oracle; a hold that vanished from it would fake a
//     legitimate population mid-reorder);
//   * the quiet-channel flush: a held message is released after
//     reorder_flush_delay even when no later traffic overtakes it;
//   * burst episodes override the steady config, expire lazily on their
//     own, and can be scoped to channel subsets;
//   * chaos trajectories are a pure function of (seed, config):
//     bit-identical across rebuilds and across lane counts P (the
//     per-link rng + chaos sequencing contract from chaos.hpp).
#include "sim/chaos.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "api/builder.hpp"
#include "api/system_base.hpp"
#include "api/topology.hpp"
#include "proto/census.hpp"
#include "sim/engine.hpp"
#include "tree/tree.hpp"

namespace klex {
namespace {

/// Counts and timestamps deliveries; replies nothing (so duplication
/// multiplies exactly the injected traffic, not an echo cascade).
class SinkProcess : public sim::Process {
 public:
  void on_message(int, const sim::Message& msg) override {
    deliveries.push_back({now(), msg});
  }
  void on_timer(int) override {}

  struct Delivery {
    sim::SimTime at;
    sim::Message msg;
  };
  std::vector<Delivery> deliveries;

  using sim::Process::now;
  using sim::Process::send;
};

/// One directed link 0 -> 1 with a chaos model attached.
struct ChaosLink {
  explicit ChaosLink(const sim::ChaosConfig& config, std::uint64_t seed = 7)
      : engine(sim::DelayModel{1, 16}, seed) {
    auto p0 = std::make_unique<SinkProcess>();
    auto p1 = std::make_unique<SinkProcess>();
    src = p0.get();
    dst = p1.get();
    engine.add_process(std::move(p0));
    engine.add_process(std::move(p1));
    engine.connect(0, 0, 1, 0);
    engine.configure_chaos(config);
    engine.start();
  }

  void send(int tag) {
    sim::Message msg;
    msg.type = 1;
    msg.f0 = tag;
    src->send(0, msg);
  }

  sim::Engine engine;
  SinkProcess* src = nullptr;
  SinkProcess* dst = nullptr;
};

// -- attachment gating -------------------------------------------------------

TEST(ChaosAttach, BuilderLeavesZeroConfigEnginesStock) {
  auto plain = SystemBuilder()
                   .topology(TopologySpec::tree_line(8))
                   .kl(1, 2)
                   .seed(3)
                   .build();
  EXPECT_FALSE(plain->engine().has_chaos());

  // An explicitly-passed all-zero config is the same as no config: the
  // zero-chaos run must stay on the stock code paths bit for bit.
  auto zero = SystemBuilder()
                  .topology(TopologySpec::tree_line(8))
                  .kl(1, 2)
                  .seed(3)
                  .chaos(sim::ChaosConfig{})
                  .build();
  EXPECT_FALSE(zero->engine().has_chaos());

  sim::ChaosConfig lossy;
  lossy.drop_p = 0.1;
  auto chaotic = SystemBuilder()
                     .topology(TopologySpec::tree_line(8))
                     .kl(1, 2)
                     .seed(3)
                     .chaos(lossy)
                     .build();
  EXPECT_TRUE(chaotic->engine().has_chaos());
}

TEST(ChaosAttach, OutOfRangeKnobsThrowAtTheSetter) {
  // A negative probability has enabled() == false; without setter-time
  // validation it would silently build a chaos-free system instead of
  // rejecting the typo.
  sim::ChaosConfig negative;
  negative.dup_p = -0.1;
  EXPECT_THROW(SystemBuilder().chaos(negative), std::invalid_argument);

  sim::ChaosConfig over_one;
  over_one.drop_p = 1.5;
  EXPECT_THROW(SystemBuilder().chaos(over_one), std::invalid_argument);

  sim::ChaosConfig zero_window;
  zero_window.reorder_p = 0.5;
  zero_window.reorder_window = 0;
  EXPECT_THROW(SystemBuilder().chaos(zero_window), std::invalid_argument);
}

// -- drop --------------------------------------------------------------------

TEST(ChaosSemantics, DropLosesTheMessageEntirely) {
  sim::ChaosConfig config;
  config.drop_p = 1.0;
  ChaosLink net(config);
  for (int i = 0; i < 5; ++i) net.send(i);
  net.engine.run_until(1'000);

  EXPECT_TRUE(net.dst->deliveries.empty());
  EXPECT_EQ(net.engine.chaos_stats().dropped, 5u);
  // Lost at send time: no ring entry, no event, no census entry -- the
  // in-flight population really is short (the deficit the root timeout
  // exists to repair).
  EXPECT_EQ(net.engine.in_flight_messages(), 0u);
}

// -- duplicate ---------------------------------------------------------------

TEST(ChaosSemantics, DuplicateDeliversTwoIndependentCopies) {
  sim::ChaosConfig config;
  config.dup_p = 1.0;
  ChaosLink net(config);
  net.send(42);
  net.engine.run_until(1'000);

  ASSERT_EQ(net.dst->deliveries.size(), 2u);
  EXPECT_EQ(net.dst->deliveries[0].msg.f0, 42);
  EXPECT_EQ(net.dst->deliveries[1].msg.f0, 42);
  EXPECT_EQ(net.engine.chaos_stats().duplicated, 1u);
  EXPECT_EQ(net.engine.in_flight_messages(), 0u);
}

// -- reorder + flush ---------------------------------------------------------

TEST(ChaosSemantics, HeldMessageStaysInTheInFlightCensus) {
  sim::ChaosConfig config;
  config.reorder_p = 1.0;
  config.reorder_window = 4;
  config.reorder_flush_delay = 200;
  ChaosLink net(config);
  net.send(1);
  net.engine.run_until(50);  // before the flush matures

  EXPECT_EQ(net.engine.chaos_held_messages(), 1u);
  EXPECT_EQ(net.engine.in_flight_messages(), 1u)
      << "a held message left the census: stabilization detection would "
         "see a legitimate population mid-reorder";
  EXPECT_TRUE(net.dst->deliveries.empty());
}

TEST(ChaosSemantics, QuietChannelFlushReleasesTheHold) {
  sim::ChaosConfig config;
  config.reorder_p = 1.0;
  config.reorder_flush_delay = 200;
  ChaosLink net(config);
  net.send(9);
  net.engine.run_until(2'000);

  ASSERT_EQ(net.dst->deliveries.size(), 1u);
  EXPECT_EQ(net.dst->deliveries[0].msg.f0, 9);
  // Released by the flush event, not by later traffic: delivery happens
  // at or after hold time + flush delay.
  EXPECT_GE(net.dst->deliveries[0].at, sim::SimTime{200});
  EXPECT_EQ(net.engine.chaos_held_messages(), 0u);
  EXPECT_EQ(net.engine.in_flight_messages(), 0u);
  EXPECT_EQ(net.engine.chaos_stats().reordered, 1u);
}

TEST(ChaosSemantics, LaterSendsReleaseHeldMessagesWithinTheWindow) {
  sim::ChaosConfig config;
  config.reorder_p = 1.0;  // every send is held; later sends mature earlier
  config.reorder_window = 1;
  config.reorder_flush_delay = 10'000;
  ChaosLink net(config);
  const int kSends = 6;
  for (int i = 0; i < kSends; ++i) net.send(i);
  // Well before the 10k flush: everything except the last hold must have
  // been released by the sends that followed it (window = 1).
  net.engine.run_until(1'000);
  EXPECT_EQ(net.dst->deliveries.size(),
            static_cast<std::size_t>(kSends - 1));
  EXPECT_EQ(net.engine.chaos_held_messages(), 1u);

  net.engine.run_until(20'000);  // the flush releases the straggler
  ASSERT_EQ(net.dst->deliveries.size(), static_cast<std::size_t>(kSends));
  EXPECT_EQ(net.engine.chaos_held_messages(), 0u);
  EXPECT_EQ(net.engine.in_flight_messages(), 0u);
  EXPECT_EQ(net.engine.chaos_stats().reordered,
            static_cast<std::uint64_t>(kSends));
}

TEST(ChaosSemantics, ClearChannelsWipesHeldMessages) {
  sim::ChaosConfig config;
  config.reorder_p = 1.0;
  config.reorder_flush_delay = 5'000;
  ChaosLink net(config);
  net.send(1);
  net.engine.run_until(50);
  ASSERT_EQ(net.engine.chaos_held_messages(), 1u);

  // The epoch cut's channel wipe must take holds with it: a hold
  // surviving the cut would resurrect a pre-cut token after the drain.
  net.engine.clear_channels();
  EXPECT_EQ(net.engine.chaos_held_messages(), 0u);
  EXPECT_EQ(net.engine.in_flight_messages(), 0u);
  net.engine.run_until(20'000);  // the stale flush event must find nothing
  EXPECT_TRUE(net.dst->deliveries.empty());
}

// -- jitter ------------------------------------------------------------------

TEST(ChaosSemantics, JitterDelaysButNeverReordersTheChannel) {
  sim::ChaosConfig config;
  config.jitter = 32;
  ChaosLink net(config, /*seed=*/21);
  const int kSends = 24;
  for (int i = 0; i < kSends; ++i) net.send(i);
  net.engine.run_until(5'000);

  ASSERT_EQ(net.dst->deliveries.size(), static_cast<std::size_t>(kSends));
  for (int i = 0; i < kSends; ++i) {
    EXPECT_EQ(net.dst->deliveries[static_cast<std::size_t>(i)].msg.f0, i)
        << "jitter must keep FIFO order (delays stretch, the clamp holds)";
  }
  EXPECT_GT(net.engine.chaos_stats().jittered, 0u);
}

// -- bursts ------------------------------------------------------------------

TEST(ChaosBurst, OverridesSteadyConfigThenExpiresLazily) {
  // Steady config: plain jitter-free lossless (all-zero is fine at the
  // engine layer; only the builder refuses to attach it).
  ChaosLink net(sim::ChaosConfig{});
  sim::ChaosConfig drop_all;
  drop_all.drop_p = 1.0;
  net.engine.chaos_burst(drop_all, 500);

  net.send(1);  // inside the burst: dropped
  net.engine.run_until(600);
  EXPECT_TRUE(net.dst->deliveries.empty());
  EXPECT_EQ(net.engine.chaos_stats().dropped, 1u);

  net.send(2);  // after expiry: the steady (lossless) config is back
  net.engine.run_until(1'200);
  ASSERT_EQ(net.dst->deliveries.size(), 1u);
  EXPECT_EQ(net.dst->deliveries[0].msg.f0, 2);
  EXPECT_EQ(net.engine.chaos_stats().dropped, 1u);
}

TEST(ChaosBurst, ChannelRangeScopingLeavesOtherLinksAlone) {
  // Two disjoint links: 0 -> 1 (channel 0) and 2 -> 3 (channel 1).
  sim::Engine engine(sim::DelayModel{1, 16}, 7);
  std::vector<SinkProcess*> procs;
  for (int i = 0; i < 4; ++i) {
    auto p = std::make_unique<SinkProcess>();
    procs.push_back(p.get());
    engine.add_process(std::move(p));
  }
  engine.connect(0, 0, 1, 0);
  engine.connect(2, 0, 3, 0);
  engine.configure_chaos(sim::ChaosConfig{});
  engine.start();

  sim::ChaosConfig drop_all;
  drop_all.drop_p = 1.0;
  engine.chaos_burst_channel_range(0, 1, drop_all, 1'000);

  sim::Message msg;
  msg.type = 1;
  procs[0]->send(0, msg);  // bursted link: dropped
  procs[2]->send(0, msg);  // untouched link: delivered
  engine.run_until(500);

  EXPECT_TRUE(procs[1]->deliveries.empty());
  ASSERT_EQ(procs[3]->deliveries.size(), 1u);
  EXPECT_EQ(engine.chaos_stats().dropped, 1u);
}

// -- determinism: (seed, config) reproducibility and P-invariance ------------

sim::ChaosConfig stress_chaos() {
  sim::ChaosConfig config;
  config.drop_p = 0.05;
  config.dup_p = 0.01;
  config.reorder_p = 0.15;
  config.reorder_window = 3;
  config.jitter = 8;
  return config;
}

std::unique_ptr<SystemBase> chaotic_system(int threads) {
  return SystemBuilder()
      .topology(TopologySpec::tree_random(24, 5))
      .kl(2, 4)
      .seed(13)
      .threads(threads)
      .chaos(stress_chaos())
      .build();
}

void expect_same_census(const proto::TokenCensus& a,
                        const proto::TokenCensus& b) {
  EXPECT_EQ(a.free_resource, b.free_resource);
  EXPECT_EQ(a.reserved_resource, b.reserved_resource);
  EXPECT_EQ(a.pusher, b.pusher);
  EXPECT_EQ(a.free_priority, b.free_priority);
  EXPECT_EQ(a.held_priority, b.held_priority);
  EXPECT_EQ(a.control, b.control);
}

void expect_same_chaos_stats(const sim::ChaosStats& a,
                             const sim::ChaosStats& b) {
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.duplicated, b.duplicated);
  EXPECT_EQ(a.reordered, b.reordered);
  EXPECT_EQ(a.jittered, b.jittered);
}

TEST(ChaosDeterminism, SameSeedAndConfigReproduceTheRun) {
  auto a = chaotic_system(1);
  auto b = chaotic_system(1);
  a->run_until(400'000);
  b->run_until(400'000);

  EXPECT_EQ(a->engine().events_executed(), b->engine().events_executed());
  EXPECT_EQ(a->engine().messages_delivered(),
            b->engine().messages_delivered());
  expect_same_chaos_stats(a->engine().chaos_stats(),
                          b->engine().chaos_stats());
  expect_same_census(a->census(), b->census());
  for (NodeId v = 0; v < a->n(); ++v) {
    EXPECT_EQ(a->state_of(v), b->state_of(v)) << "node " << v;
  }
}

class ChaosLaneInvariance : public ::testing::TestWithParam<int> {};

TEST_P(ChaosLaneInvariance, TrajectoryIsIdenticalAtEveryLaneCount) {
  // The chaos contract's strongest clause: the whole trajectory --
  // clocks, counters, chaos decisions, protocol state -- is the same at
  // P lanes as at 1 (per-link rngs keyed by channel index + chaos
  // sequencing; see chaos.hpp).
  auto serial = chaotic_system(1);
  auto parallel = chaotic_system(GetParam());
  ASSERT_EQ(parallel->threads(), GetParam());

  for (sim::SimTime t : {sim::SimTime{50'000}, sim::SimTime{200'000},
                         sim::SimTime{400'000}}) {
    serial->run_until(t);
    parallel->run_until(t);
    EXPECT_EQ(serial->engine().now(), parallel->engine().now());
    EXPECT_EQ(serial->engine().events_executed(),
              parallel->engine().events_executed());
    EXPECT_EQ(serial->engine().messages_sent(),
              parallel->engine().messages_sent());
    EXPECT_EQ(serial->engine().messages_delivered(),
              parallel->engine().messages_delivered());
    expect_same_chaos_stats(serial->engine().chaos_stats(),
                            parallel->engine().chaos_stats());
  }
  expect_same_census(serial->census(), parallel->census());
  // The incremental census must agree with the full-walk oracle under
  // chaos too (holds count as in flight on both sides).
  expect_same_census(serial->census(), serial->census_oracle());
  expect_same_census(parallel->census(), parallel->census_oracle());
  for (NodeId v = 0; v < serial->n(); ++v) {
    EXPECT_EQ(serial->state_of(v), parallel->state_of(v)) << "node " << v;
    EXPECT_EQ(serial->need_of(v), parallel->need_of(v)) << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Lanes, ChaosLaneInvariance,
                         ::testing::Values(2, 4));

TEST(ChaosDeterminism, PostBurstConvergenceIsIdenticalAcrossLaneCounts) {
  auto serial = chaotic_system(1);
  auto parallel = chaotic_system(4);
  sim::SimTime stab_s = serial->run_until_stabilized(10'000'000);
  sim::SimTime stab_p = parallel->run_until_stabilized(10'000'000);
  ASSERT_NE(stab_s, sim::kTimeInfinity);
  EXPECT_EQ(stab_s, stab_p);

  sim::ChaosConfig severe;
  severe.drop_p = 0.5;
  severe.reorder_p = 0.3;
  serial->engine().chaos_burst(severe, 2'000);
  parallel->engine().chaos_burst(severe, 2'000);

  sim::SimTime rec_s = serial->run_until_stabilized(
      serial->engine().now() + 10'000'000);
  sim::SimTime rec_p = parallel->run_until_stabilized(
      parallel->engine().now() + 10'000'000);
  ASSERT_NE(rec_s, sim::kTimeInfinity) << "burst must re-stabilize";
  EXPECT_EQ(rec_s, rec_p)
      << "post-burst recovery diverged across lane counts";
  expect_same_chaos_stats(serial->engine().chaos_stats(),
                          parallel->engine().chaos_stats());
  expect_same_census(serial->census(), parallel->census());
}

// -- counter widths ----------------------------------------------------------

TEST(ChaosStatsWidth, DecisionCountersAreSixtyFourBit) {
  static_assert(std::is_same_v<decltype(sim::ChaosStats::dropped),
                               std::uint64_t>);
  static_assert(std::is_same_v<decltype(sim::ChaosStats::duplicated),
                               std::uint64_t>);
  static_assert(std::is_same_v<decltype(sim::ChaosStats::reordered),
                               std::uint64_t>);
  static_assert(std::is_same_v<decltype(sim::ChaosStats::jittered),
                               std::uint64_t>);
  SUCCEED();
}

}  // namespace
}  // namespace klex
