#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "support/check.hpp"

namespace klex::sim {
namespace {

/// Records deliveries; optionally echoes each message back.
class Recorder : public Process {
 public:
  explicit Recorder(bool echo = false) : echo_(echo) {}

  void on_message(int channel, const Message& msg) override {
    deliveries.push_back({now(), channel, msg});
    if (echo_ && msg.f0 > 0) {
      Message reply = msg;
      --reply.f0;
      send(channel, reply);
    }
  }

  void on_timer(int timer_id) override { timer_fires.push_back(timer_id); }

  struct Delivery {
    SimTime at;
    int channel;
    Message msg;
  };

  std::vector<Delivery> deliveries;
  std::vector<int> timer_fires;

  using Process::cancel_timer;
  using Process::send;
  using Process::set_timer;

 private:
  bool echo_;
};

Message tagged(std::int32_t tag) {
  Message msg;
  msg.type = 1;
  msg.f0 = tag;
  return msg;
}

/// Two nodes connected in both directions on channel 0.
struct Pair {
  explicit Pair(DelayModel delays = {}, std::uint64_t seed = 1)
      : engine(delays, seed) {
    auto p0 = std::make_unique<Recorder>();
    auto p1 = std::make_unique<Recorder>();
    a = p0.get();
    b = p1.get();
    engine.add_process(std::move(p0));
    engine.add_process(std::move(p1));
    engine.connect(0, 0, 1, 0);
    engine.connect(1, 0, 0, 0);
  }
  Engine engine;
  Recorder* a;
  Recorder* b;
};

TEST(Engine, DeliversMessages) {
  Pair net;
  net.engine.start();
  net.a->send(0, tagged(7));
  net.engine.run_until(1000);
  ASSERT_EQ(net.b->deliveries.size(), 1u);
  EXPECT_EQ(net.b->deliveries[0].msg.f0, 7);
  EXPECT_EQ(net.b->deliveries[0].channel, 0);
}

TEST(Engine, FifoOrderPreserved) {
  Pair net(DelayModel{1, 64}, 3);
  net.engine.start();
  for (std::int32_t i = 0; i < 100; ++i) net.a->send(0, tagged(i));
  net.engine.run_until(100000);
  ASSERT_EQ(net.b->deliveries.size(), 100u);
  for (std::int32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(net.b->deliveries[static_cast<std::size_t>(i)].msg.f0, i)
        << "FIFO violated at position " << i;
  }
}

TEST(Engine, DelayWithinBounds) {
  Pair net(DelayModel{5, 9}, 11);
  net.engine.start();
  net.a->send(0, tagged(1));
  net.engine.run_until(100);
  ASSERT_EQ(net.b->deliveries.size(), 1u);
  EXPECT_GE(net.b->deliveries[0].at, 5u);
  EXPECT_LE(net.b->deliveries[0].at, 9u);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    Pair net(DelayModel{1, 16}, seed);
    net.engine.start();
    for (std::int32_t i = 0; i < 50; ++i) net.a->send(0, tagged(i));
    net.engine.run_until(100000);
    std::vector<SimTime> times;
    for (const auto& d : net.b->deliveries) times.push_back(d.at);
    return times;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(Engine, PingPongTerminates) {
  Pair net;
  net.engine.start();
  // Echo 10 bounces.
  auto echo_pair = Pair(DelayModel{1, 4}, 5);
  // Rebuild with echo processes.
  Engine engine(DelayModel{1, 4}, 5);
  auto p0 = std::make_unique<Recorder>(true);
  auto p1 = std::make_unique<Recorder>(true);
  Recorder* a = p0.get();
  Recorder* b = p1.get();
  engine.add_process(std::move(p0));
  engine.add_process(std::move(p1));
  engine.connect(0, 0, 1, 0);
  engine.connect(1, 0, 0, 0);
  engine.start();
  a->send(0, tagged(9));  // 9 echoes follow
  EXPECT_TRUE(engine.run_until_message_quiescence(10000));
  EXPECT_EQ(engine.messages_delivered(), 10u);
  EXPECT_EQ(a->deliveries.size() + b->deliveries.size(), 10u);
  (void)echo_pair;
}

TEST(Engine, TimerFiresOnce) {
  Pair net;
  net.engine.start();
  net.a->set_timer(2, 50);
  net.engine.run_until(200);
  ASSERT_EQ(net.a->timer_fires.size(), 1u);
  EXPECT_EQ(net.a->timer_fires[0], 2);
}

TEST(Engine, TimerRearmInvalidatesPrevious) {
  Pair net;
  net.engine.start();
  net.a->set_timer(0, 100);
  net.a->set_timer(0, 500);  // rearm before first fire
  net.engine.run_until(300);
  EXPECT_TRUE(net.a->timer_fires.empty());
  net.engine.run_until(600);
  EXPECT_EQ(net.a->timer_fires.size(), 1u);
}

TEST(Engine, TimerCancel) {
  Pair net;
  net.engine.start();
  net.a->set_timer(1, 100);
  net.a->cancel_timer(1);
  net.engine.run_until(1000);
  EXPECT_TRUE(net.a->timer_fires.empty());
}

TEST(Engine, ScheduledCallbacksRun) {
  Pair net;
  net.engine.start();
  int fired = 0;
  net.engine.schedule(10, [&fired] { ++fired; });
  net.engine.schedule(20, [&fired] { ++fired; });
  net.engine.run_until(15);
  EXPECT_EQ(fired, 1);
  net.engine.run_until(25);
  EXPECT_EQ(fired, 2);
}

TEST(Engine, InFlightAccounting) {
  Pair net;
  net.engine.start();
  net.a->send(0, tagged(1));
  net.a->send(0, tagged(2));
  EXPECT_EQ(net.engine.in_flight_messages(), 2u);
  net.engine.run_until(100000);
  EXPECT_EQ(net.engine.in_flight_messages(), 0u);
  EXPECT_EQ(net.engine.messages_sent(), 2u);
  EXPECT_EQ(net.engine.messages_delivered(), 2u);
}

TEST(Engine, ForEachInFlightSeesQueuedMessages) {
  Pair net;
  net.engine.start();
  net.a->send(0, tagged(5));
  int seen = 0;
  net.engine.for_each_in_flight(
      [&seen](const ChannelInfo& info, const Message& msg) {
        ++seen;
        EXPECT_EQ(info.from, 0);
        EXPECT_EQ(info.to, 1);
        EXPECT_EQ(msg.f0, 5);
      });
  EXPECT_EQ(seen, 1);
  EXPECT_EQ(net.engine.channel_backlog(0, 0), 1);
  EXPECT_EQ(net.engine.channel_backlog(1, 0), 0);
}

TEST(Engine, ClearChannelsDropsMessages) {
  Pair net;
  net.engine.start();
  net.a->send(0, tagged(1));
  net.a->send(0, tagged(2));
  net.engine.clear_channels();
  EXPECT_EQ(net.engine.in_flight_messages(), 0u);
  net.engine.run_until(100000);
  EXPECT_TRUE(net.b->deliveries.empty());
}

TEST(Engine, InjectMessageBehavesLikeSend) {
  Pair net;
  net.engine.start();
  net.engine.inject_message(0, 0, tagged(33));
  net.engine.run_until(1000);
  ASSERT_EQ(net.b->deliveries.size(), 1u);
  EXPECT_EQ(net.b->deliveries[0].msg.f0, 33);
  // Injection is not counted as a protocol send.
  EXPECT_EQ(net.engine.messages_sent(), 0u);
  EXPECT_EQ(net.engine.messages_delivered(), 1u);
}

TEST(Engine, InjectionPreservesFifoWithSends) {
  Pair net(DelayModel{1, 32}, 7);
  net.engine.start();
  net.engine.inject_message(0, 0, tagged(100));
  net.a->send(0, tagged(101));
  net.engine.inject_message(0, 0, tagged(102));
  net.engine.run_until(10000);
  ASSERT_EQ(net.b->deliveries.size(), 3u);
  EXPECT_EQ(net.b->deliveries[0].msg.f0, 100);
  EXPECT_EQ(net.b->deliveries[1].msg.f0, 101);
  EXPECT_EQ(net.b->deliveries[2].msg.f0, 102);
}

TEST(Engine, ObserverSeesTraffic) {
  class Counter : public SimObserver {
   public:
    void on_send(SimTime, NodeId, int, const Message&) override { ++sends; }
    void on_deliver(SimTime, NodeId, int, const Message&) override {
      ++delivers;
    }
    int sends = 0;
    int delivers = 0;
  };
  Pair net;
  Counter counter;
  net.engine.add_observer(&counter);
  net.engine.start();
  net.a->send(0, tagged(1));
  net.engine.run_until(1000);
  EXPECT_EQ(counter.sends, 1);
  EXPECT_EQ(counter.delivers, 1);
}

TEST(Engine, RunEventsBudget) {
  Pair net;
  net.engine.start();
  for (int i = 0; i < 10; ++i) net.a->send(0, tagged(i));
  EXPECT_EQ(net.engine.run_events(4), 4u);
  EXPECT_EQ(net.b->deliveries.size(), 4u);
}

TEST(Engine, ConnectValidation) {
  Engine engine;
  engine.add_process(std::make_unique<Recorder>());
  engine.add_process(std::make_unique<Recorder>());
  engine.connect(0, 0, 1, 0);
  EXPECT_THROW(engine.connect(0, 0, 1, 0), std::invalid_argument);
  EXPECT_THROW(engine.connect(5, 0, 1, 0), std::invalid_argument);
}

TEST(Engine, BadDelayModelRejected) {
  EXPECT_THROW(Engine(DelayModel{0, 5}), std::invalid_argument);
  EXPECT_THROW(Engine(DelayModel{6, 5}), std::invalid_argument);
}

TEST(Engine, TimeAdvancesMonotonically) {
  Pair net(DelayModel{1, 8}, 13);
  net.engine.start();
  for (int i = 0; i < 20; ++i) net.a->send(0, tagged(i));
  SimTime last = 0;
  while (net.engine.step()) {
    EXPECT_GE(net.engine.now(), last);
    last = net.engine.now();
  }
}

}  // namespace
}  // namespace klex::sim
