// The rewritten event core: callback-slab recycling, timer-generation
// invalidation through the flat table, heap ordering under stress, and
// the EngineStats counters the benchmark JSON reports.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/engine.hpp"

namespace klex::sim {
namespace {

class Sink : public Process {
 public:
  void on_message(int, const Message&) override { ++deliveries; }
  void on_timer(int timer_id) override { timer_fires.push_back(timer_id); }
  using Process::send;
  using Process::set_timer;
  int deliveries = 0;
  std::vector<int> timer_fires;
};

struct Net {
  explicit Net(DelayModel delays = {}, std::uint64_t seed = 1)
      : engine(delays, seed) {
    auto p0 = std::make_unique<Sink>();
    auto p1 = std::make_unique<Sink>();
    a = p0.get();
    b = p1.get();
    engine.add_process(std::move(p0));
    engine.add_process(std::move(p1));
    engine.connect(0, 0, 1, 0);
    engine.connect(1, 0, 0, 0);
  }
  Engine engine;
  Sink* a;
  Sink* b;
};

TEST(EventCore, CallbackSlabRecyclesSlots) {
  Net net;
  net.engine.start();
  int fired = 0;
  // Sequential schedule/run cycles: after the first slot exists, no new
  // slots may be created -- the freed slot must be reused every time.
  for (int round = 0; round < 100; ++round) {
    net.engine.schedule(1, [&fired] { ++fired; });
    net.engine.run_until(net.engine.now() + 2);
  }
  EXPECT_EQ(fired, 100);
  EngineStats stats = net.engine.stats();
  EXPECT_EQ(stats.callbacks_scheduled, 100u);
  EXPECT_EQ(stats.callback_slots_created, 1u);
}

TEST(EventCore, SlabGrowsToConcurrentPeakOnly) {
  Net net;
  net.engine.start();
  int fired = 0;
  for (int wave = 0; wave < 10; ++wave) {
    for (int i = 0; i < 5; ++i) {
      net.engine.schedule(static_cast<SimTime>(1 + i),
                          [&fired] { ++fired; });
    }
    net.engine.run_until(net.engine.now() + 10);
  }
  EXPECT_EQ(fired, 50);
  EXPECT_EQ(net.engine.stats().callback_slots_created, 5u);
}

TEST(EventCore, ReentrantScheduleFromCallbackIsSafe) {
  Net net;
  net.engine.start();
  int chain = 0;
  std::function<void()> next = [&] {
    if (++chain < 10) net.engine.schedule(1, next);
  };
  net.engine.schedule(1, next);
  net.engine.run_until(100);
  EXPECT_EQ(chain, 10);
  // The chain reuses one freed slot per link (freed before the callback
  // runs), so the tail schedule may claim at most one extra slot.
  EXPECT_LE(net.engine.stats().callback_slots_created, 2u);
}

TEST(EventCore, HeapOrderingUnderBurstLoad) {
  // Many same-tick and out-of-order events: times must be non-decreasing
  // and FIFO must hold per channel.
  Net net(DelayModel{1, 64}, 9);
  net.engine.start();
  for (int i = 0; i < 500; ++i) net.a->send(0, Message{1, i, 0, 0, 0});
  SimTime last = 0;
  while (net.engine.step()) {
    EXPECT_GE(net.engine.now(), last);
    last = net.engine.now();
  }
  EXPECT_EQ(net.b->deliveries, 500);
  EXPECT_EQ(net.engine.stats().messages_delivered, 500u);
  EXPECT_GE(net.engine.stats().max_heap_size, 1u);
}

TEST(EventCore, TimerGenerationsSurviveHeavyRearming) {
  Net net;
  net.engine.start();
  // Rearm the same timer 1000 times; only the last arming may fire.
  for (int i = 0; i < 1000; ++i) {
    net.a->set_timer(3, static_cast<SimTime>(10 + i % 7));
  }
  net.engine.run_until(1000);
  ASSERT_EQ(net.a->timer_fires.size(), 1u);
  EXPECT_EQ(net.a->timer_fires[0], 3);
}

TEST(EventCore, AllTimerIdsIndependent) {
  Net net;
  net.engine.start();
  for (int id = 0; id < Engine::kMaxTimers; ++id) {
    net.a->set_timer(id, static_cast<SimTime>(10 + id));
  }
  net.engine.run_until(100);
  ASSERT_EQ(net.a->timer_fires.size(),
            static_cast<std::size_t>(Engine::kMaxTimers));
  for (int id = 0; id < Engine::kMaxTimers; ++id) {
    EXPECT_EQ(net.a->timer_fires[static_cast<std::size_t>(id)], id);
  }
  EXPECT_THROW(net.a->set_timer(Engine::kMaxTimers, 1),
               std::invalid_argument);
}

TEST(EventCore, ClearedChannelsDoNotAccelerateLaterTraffic) {
  // A delivery event stranded in the heap by clear_channels() must not
  // deliver a later-injected message ahead of its own sampled delay.
  Net net(DelayModel{4, 4}, 3);
  net.engine.start();
  net.a->send(0, Message{1, 1, 0, 0, 0});  // stale event at t = 4
  net.engine.run_until(2);                 // now = 2, delivery pending
  net.engine.clear_channels();
  net.engine.inject_message(0, 0, Message{1, 2, 0, 0, 0});  // due t = 6
  SimTime before = net.engine.now();
  while (net.engine.step()) {
    if (net.b->deliveries > 0) break;
  }
  EXPECT_EQ(net.b->deliveries, 1);
  EXPECT_EQ(net.engine.now(), before + 4);  // full min_delay honored
}

// -- calendar-queue scheduler ------------------------------------------------
//
// The routing policy as a gated invariant, with deterministic counters:
// sparse queues (<= kSparseThreshold pending) stay on the tiny hot heap,
// loaded queues move the bulk onto the O(1) calendar ring, far-future
// events always take the heap, and the (at, seq) merge keeps the split
// invisible to event order. Any drift in the counts below means the
// scheduling policy changed.

TEST(EventCore, SparseTrafficPrefersTheHeap) {
  Net net;  // one outstanding delivery at a time: always sparse
  net.engine.start();
  for (int round = 0; round < 200; ++round) {
    net.a->send(0, Message{1, round, 0, 0, 0});
    net.engine.run_until(net.engine.now() + 20);
  }
  EngineStats stats = net.engine.stats();
  EXPECT_EQ(net.b->deliveries, 200);
  EXPECT_EQ(stats.scheduler.bucket_inserts, 0u);
  EXPECT_EQ(stats.scheduler.bucket_scans, 0u);
  EXPECT_EQ(stats.scheduler.overflow_pushes, 200u);
  EXPECT_EQ(stats.scheduler.overflow_pops, 200u);
}

TEST(EventCore, LoadedQueueMovesTheBulkToTheRing) {
  // A standing burst: the first kSparseThreshold pushes seed the heap,
  // everything past the threshold lands in calendar buckets, and the
  // merge delivers all of it in time order.
  Net net(DelayModel{1, 16}, 9);
  net.engine.start();
  for (int i = 0; i < 100; ++i) net.a->send(0, Message{1, i, 0, 0, 0});
  EngineStats queued = net.engine.stats();
  EXPECT_EQ(queued.scheduler.overflow_pushes, 8u);  // kSparseThreshold
  EXPECT_EQ(queued.scheduler.bucket_inserts, 92u);
  SimTime last = 0;
  while (net.engine.step()) {
    EXPECT_GE(net.engine.now(), last);
    last = net.engine.now();
  }
  EXPECT_EQ(net.b->deliveries, 100);
}

TEST(EventCore, FarFutureTimerPaysOneHeapRoundTrip) {
  Net net;
  net.engine.start();
  net.a->set_timer(0, 10'000);  // beyond the 1024-tick ring window
  EngineStats armed = net.engine.stats();
  EXPECT_EQ(armed.scheduler.overflow_pushes, 1u);
  EXPECT_EQ(armed.scheduler.overflow_pops, 0u);
  net.engine.run_until(20'000);
  ASSERT_EQ(net.a->timer_fires.size(), 1u);
  EngineStats fired = net.engine.stats();
  EXPECT_EQ(fired.scheduler.overflow_pushes, 1u);
  EXPECT_EQ(fired.scheduler.overflow_pops, 1u);
}

TEST(EventCore, SameTickBurstStaysFifoInOneBucket) {
  // Fixed 4-tick delay, 2000 sends at t=0: the FIFO clamp
  // (max(now+delay, last_scheduled)) lands every delivery on tick 4 --
  // a deep backlog piles onto ONE bucket (after the sparse-threshold
  // heap seed), and the (at, seq) merge drains heap seqs 0..7 then ring
  // seqs 8..1999: exact send order.
  Net net(DelayModel{4, 4}, 5);
  net.engine.start();
  for (int i = 0; i < 2000; ++i) net.a->send(0, Message{1, i, 0, 0, 0});
  EngineStats queued = net.engine.stats();
  EXPECT_EQ(queued.scheduler.overflow_pushes, 8u);
  EXPECT_EQ(queued.scheduler.bucket_inserts, 1992u);
  net.engine.run_until(10'000);
  EXPECT_EQ(net.b->deliveries, 2000);
  EXPECT_EQ(net.engine.stats().scheduler.bucket_scans, 1u);  // one bucket
}

TEST(EventCore, FarEventOutwaitsRingTrafficAndFiresOnTime) {
  // A callback beyond the ring window sits on the heap while in-window
  // ring traffic churns past it, and still fires at its exact tick.
  Net net(DelayModel{1, 16}, 13);
  net.engine.start();
  int fired_at = -1;
  net.engine.schedule(1'500, [&net, &fired_at] {
    fired_at = static_cast<int>(net.engine.now());
  });                                          // beyond 1024: heap
  for (int i = 0; i < 64; ++i) net.a->send(0, Message{1, i, 0, 0, 0});
  EXPECT_EQ(net.engine.stats().scheduler.overflow_pushes, 8u);  // incl. cb
  net.engine.run_until(1'000);
  EXPECT_EQ(net.b->deliveries, 64);
  EXPECT_EQ(fired_at, -1);
  net.engine.run_until(2'000);
  EXPECT_EQ(fired_at, 1500);
}

TEST(EventCore, BinaryHeapModeBypassesTheRing) {
  Engine engine(DelayModel{}, 1, SchedulerKind::kBinaryHeap);
  auto p0 = std::make_unique<Sink>();
  Sink* a = p0.get();
  engine.add_process(std::move(p0));
  engine.add_process(std::make_unique<Sink>());
  engine.connect(0, 0, 1, 0);
  engine.start();
  for (int i = 0; i < 50; ++i) a->send(0, Message{1, i, 0, 0, 0});
  engine.run_until(1'000);
  EngineStats stats = engine.stats();
  EXPECT_EQ(stats.messages_delivered, 50u);
  EXPECT_EQ(stats.scheduler.bucket_inserts, 0u);
  EXPECT_EQ(stats.scheduler.bucket_scans, 0u);
  EXPECT_EQ(stats.scheduler.overflow_pushes, 50u);
  EXPECT_EQ(stats.scheduler.overflow_pops, 50u);
}

TEST(EventCore, StatsCountersAreCoherent) {
  Net net;
  net.engine.start();
  for (int i = 0; i < 20; ++i) net.a->send(0, Message{1, i, 0, 0, 0});
  net.engine.schedule(5, [] {});
  net.engine.run_until(100000);
  EngineStats stats = net.engine.stats();
  EXPECT_EQ(stats.messages_sent, 20u);
  EXPECT_EQ(stats.messages_delivered, 20u);
  EXPECT_EQ(stats.events_executed, net.engine.events_executed());
  EXPECT_EQ(stats.callbacks_scheduled, 1u);
  EXPECT_GE(stats.max_heap_size, 20u);  // the burst was all pending at once
}

}  // namespace
}  // namespace klex::sim
