// MessageRing FIFO stress: wrap-around and growth under churn.
//
// The ring is the per-channel in-flight FIFO on the hot delivery path;
// its head/tail are monotone 64-bit counters masked into a power-of-two
// buffer, and growth re-packs the live range into a doubled buffer. The
// failure modes worth pinning are exactly the masked-index corner cases:
// a push that lands while the live range straddles the wrap point, a
// grow() triggered mid-wrap (the live range must be re-packed in FIFO
// order, not buffer order), and long push/pop churn where the counters
// run far ahead of the capacity.
#include "sim/message_ring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>

#include "sim/message.hpp"
#include "support/rng.hpp"

namespace klex::sim {
namespace {

Message tagged(std::int32_t tag) {
  Message msg;
  msg.type = 1;
  msg.f0 = tag;
  return msg;
}

TEST(MessageRing, GrowMidWrapKeepsFifoOrder) {
  // Force the live range to straddle the wrap point, then push past
  // capacity so grow() must re-pack a wrapped range.
  MessageRing ring;
  for (std::int32_t i = 0; i < 8; ++i) ring.push_back(tagged(i));
  for (std::int32_t i = 0; i < 6; ++i) {
    EXPECT_EQ(ring.front().f0, i);
    ring.pop_front();
  }
  // head is deep into the buffer; these pushes wrap around the end.
  for (std::int32_t i = 8; i < 40; ++i) ring.push_back(tagged(i));
  ASSERT_EQ(ring.size(), 34u);
  for (std::int32_t i = 6; i < 40; ++i) {
    ASSERT_EQ(ring.front().f0, i) << "FIFO order broken after mid-wrap grow";
    ring.pop_front();
  }
  EXPECT_TRUE(ring.empty());
}

TEST(MessageRing, ForEachVisitsTheLiveRangeInFifoOrderAcrossWrap) {
  MessageRing ring;
  for (std::int32_t i = 0; i < 12; ++i) ring.push_back(tagged(i));
  for (std::int32_t i = 0; i < 9; ++i) ring.pop_front();
  for (std::int32_t i = 12; i < 24; ++i) ring.push_back(tagged(i));

  std::int32_t expected = 9;
  ring.for_each([&](const Message& msg) { EXPECT_EQ(msg.f0, expected++); });
  EXPECT_EQ(expected, 24);
}

TEST(MessageRing, ClearResetsAndTheRingIsReusable) {
  MessageRing ring;
  for (std::int32_t i = 0; i < 20; ++i) ring.push_back(tagged(i));
  ring.clear();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.size(), 0u);
  for (std::int32_t i = 100; i < 110; ++i) ring.push_back(tagged(i));
  for (std::int32_t i = 100; i < 110; ++i) {
    ASSERT_EQ(ring.front().f0, i);
    ring.pop_front();
  }
}

TEST(MessageRing, RandomizedChurnMatchesDequeOracle) {
  // 100k mixed push/pop operations with drifting fill level: the
  // counters run far past every capacity the ring grows through, so
  // every masked-index path (wrap, grow mid-wrap, empty-refill) gets
  // hit. The deque is the trivially-correct FIFO oracle.
  MessageRing ring;
  std::deque<Message> oracle;
  support::Rng rng(0xD15C0);
  std::int32_t next_tag = 0;
  // Phase-shifted push bias: long filling stretches then long draining
  // stretches, so the fill level sweeps up and down repeatedly.
  for (int op = 0; op < 100'000; ++op) {
    const bool fill_phase = (op / 5'000) % 2 == 0;
    const bool push = oracle.empty() ||
                      rng.next_below(100) < (fill_phase ? 70u : 30u);
    if (push) {
      Message msg = tagged(next_tag++);
      ring.push_back(msg);
      oracle.push_back(msg);
    } else {
      ASSERT_EQ(ring.front().f0, oracle.front().f0) << "op " << op;
      ring.pop_front();
      oracle.pop_front();
    }
    ASSERT_EQ(ring.size(), oracle.size()) << "op " << op;
  }
  // Drain and compare the tail end.
  while (!oracle.empty()) {
    ASSERT_EQ(ring.front().f0, oracle.front().f0);
    ring.pop_front();
    oracle.pop_front();
  }
  EXPECT_TRUE(ring.empty());
}

}  // namespace
}  // namespace klex::sim
