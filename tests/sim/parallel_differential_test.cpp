// Differential tests for the conservative time-window parallel engine
// (sim/parallel_engine.hpp).
//
// The contract under test, in increasing strength:
//   * with one lane the windowed loop is the serial engine bit for bit
//     (same delivery trace, same timestamps, same counters);
//   * with P lanes the windowed execution equals the merged-serial loop
//     (Engine::run_until over the same partition) event for event --
//     checked through final process snapshots, token census, clocks and
//     message counters at several cut points;
//   * that equality survives transient faults and garbage floods on
//     every topology family (tree, ring, spanning-tree composition),
//     and both executions re-stabilize to the legitimate population.
//
// Also pinned here, as satellites of the same PR: the calendar ring's
// auto-sized bucket window (delay models or declared timer spans beyond
// the 1024-tick default grow the window instead of spilling events to
// the overflow heap) and the 64-bit width of every per-event counter
// (at n = 10^6 a run executes ~10^9+ events; a 32-bit accumulator would
// wrap silently).
#include "sim/parallel_engine.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "api/builder.hpp"
#include "api/system.hpp"
#include "api/system_base.hpp"
#include "api/topology.hpp"
#include "proto/app.hpp"
#include "proto/census.hpp"
#include "sim/chaos.hpp"
#include "sim/engine.hpp"
#include "support/rng.hpp"
#include "tree/tree.hpp"
#include "verify/safety_monitor.hpp"

namespace klex {
namespace {

// -- shared fixtures ---------------------------------------------------------

/// A mid-size random tree exercising uneven lane cuts (subtree sizes
/// differ, so lanes genuinely interleave at every window barrier).
SystemConfig tree_config(int threads, std::uint64_t seed = 11) {
  SystemConfig config;
  support::Rng topo_rng(7);
  config.tree = tree::random_tree(48, topo_rng);
  config.k = 2;
  config.l = 5;
  config.seed = seed;
  config.seed_tokens = true;
  config.threads = threads;
  return config;
}

/// Records every send and delivery the engine reports, in order. Two
/// equal traces mean two equal executions -- timestamps, event order,
/// payloads and all.
struct TraceObserver : sim::SimObserver {
  struct Record {
    sim::SimTime at = 0;
    bool deliver = false;
    sim::NodeId node = -1;
    int channel = -1;
    sim::Message msg;

    friend bool operator==(const Record&, const Record&) = default;
  };

  void on_send(sim::SimTime at, sim::NodeId from, int channel,
               const sim::Message& msg) override {
    records.push_back({at, false, from, channel, msg});
  }
  void on_deliver(sim::SimTime at, sim::NodeId to, int channel,
                  const sim::Message& msg) override {
    records.push_back({at, true, to, channel, msg});
  }

  std::vector<Record> records;
};

void expect_same_census(const proto::TokenCensus& a,
                        const proto::TokenCensus& b) {
  EXPECT_EQ(a.free_resource, b.free_resource);
  EXPECT_EQ(a.reserved_resource, b.reserved_resource);
  EXPECT_EQ(a.pusher, b.pusher);
  EXPECT_EQ(a.free_priority, b.free_priority);
  EXPECT_EQ(a.held_priority, b.held_priority);
  EXPECT_EQ(a.control, b.control);
}

void expect_same_clocks_and_counters(const sim::Engine& a,
                                     const sim::Engine& b) {
  EXPECT_EQ(a.now(), b.now());
  EXPECT_EQ(a.events_executed(), b.events_executed());
  EXPECT_EQ(a.messages_sent(), b.messages_sent());
  EXPECT_EQ(a.messages_delivered(), b.messages_delivered());
  EXPECT_EQ(a.in_flight_messages(), b.in_flight_messages());
}

void expect_same_snapshots(const System& a, const System& b) {
  ASSERT_EQ(a.n(), b.n());
  for (NodeId v = 0; v < a.n(); ++v) {
    proto::LocalSnapshot sa = a.node(v).snapshot();
    proto::LocalSnapshot sb = b.node(v).snapshot();
    EXPECT_EQ(sa.state, sb.state) << "node " << v;
    EXPECT_EQ(sa.need, sb.need) << "node " << v;
    EXPECT_EQ(sa.rset_size, sb.rset_size) << "node " << v;
    EXPECT_EQ(sa.holds_priority, sb.holds_priority) << "node " << v;
    EXPECT_EQ(sa.reset, sb.reset) << "node " << v;
    EXPECT_EQ(sa.myc, sb.myc) << "node " << v;
    EXPECT_EQ(sa.succ, sb.succ) << "node " << v;
    EXPECT_EQ(sa.stoken, sb.stoken) << "node " << v;
    EXPECT_EQ(sa.spush, sb.spush) << "node " << v;
    EXPECT_EQ(sa.sprio, sb.sprio) << "node " << v;
  }
}

// -- one lane: bit-identical to the serial engine ----------------------------

TEST(ParallelDifferential, OneLaneWindowedIsBitIdenticalToSerial) {
  System serial(tree_config(/*threads=*/1));
  System windowed(tree_config(/*threads=*/1));
  ASSERT_EQ(windowed.parallel_engine(), nullptr);  // 1 lane: serial system

  TraceObserver serial_trace;
  TraceObserver windowed_trace;
  serial.add_observer(&serial_trace);
  windowed.add_observer(&windowed_trace);

  // Drive the windowed loop directly over the 1-lane engine; chunked cut
  // points also exercise window resumption across run_until calls.
  sim::ParallelEngine windows(windowed.engine());
  for (sim::SimTime t : {sim::SimTime{1'000}, sim::SimTime{7'000},
                         sim::SimTime{40'000}, sim::SimTime{200'000}}) {
    serial.run_until(t);
    windows.run_until(t);
    expect_same_clocks_and_counters(serial.engine(), windowed.engine());
  }
  EXPECT_GT(windows.window_stats().windows, 0u);
  EXPECT_EQ(windows.window_stats().merged_fallbacks, 0u);

  ASSERT_EQ(serial_trace.records.size(), windowed_trace.records.size());
  EXPECT_TRUE(serial_trace.records == windowed_trace.records)
      << "the 1-lane windowed trace diverged from the serial engine";
  expect_same_snapshots(serial, windowed);
  expect_same_census(serial.census(), windowed.census());
}

// -- P lanes: windowed == merged-serial --------------------------------------

class WindowedVsMerged : public ::testing::TestWithParam<int> {};

TEST_P(WindowedVsMerged, SameTrajectoryAsMergedSerial) {
  const int lanes = GetParam();
  System windowed(tree_config(lanes));
  System merged(tree_config(lanes));
  ASSERT_EQ(windowed.threads(), lanes);
  ASSERT_NE(windowed.parallel_engine(), nullptr);

  for (sim::SimTime t : {sim::SimTime{2'000}, sim::SimTime{15'000},
                         sim::SimTime{80'000}, sim::SimTime{250'000}}) {
    windowed.run_until(t);         // conservative windows, worker threads
    merged.engine().run_until(t);  // global (at, seq) min across lanes
    expect_same_clocks_and_counters(windowed.engine(), merged.engine());
  }
  EXPECT_GT(windowed.parallel_engine()->window_stats().windows, 0u);
  EXPECT_EQ(windowed.parallel_engine()->window_stats().merged_fallbacks, 0u);

  expect_same_snapshots(windowed, merged);
  expect_same_census(windowed.census(), merged.census());
  // The per-lane census cells must agree with the full-walk oracle.
  expect_same_census(windowed.census(), windowed.census_oracle());
  expect_same_census(merged.census(), merged.census_oracle());
}

INSTANTIATE_TEST_SUITE_P(Lanes, WindowedVsMerged, ::testing::Values(2, 4, 8));

// -- faults, across topology families ----------------------------------------

struct FaultCase {
  TopologySpec topo;
  FaultKind fault = FaultKind::kTransient;
};

std::string fault_case_name(const ::testing::TestParamInfo<FaultCase>& info) {
  std::string name = info.param.topo.name();
  name += info.param.fault == FaultKind::kTransient ? "_transient" : "_flood";
  for (char& c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)))) c = '_';
  }
  return name;
}

class ParallelFaultRecovery : public ::testing::TestWithParam<FaultCase> {};

TEST_P(ParallelFaultRecovery, WindowedRecoveryMatchesMergedSerial) {
  const FaultCase& fault_case = GetParam();
  auto build = [&]() {
    SystemBuilder builder;
    builder.topology(fault_case.topo).kl(2, 4).seed(17).threads(2);
    return builder.build();
  };
  std::unique_ptr<SystemBase> windowed = build();
  std::unique_ptr<SystemBase> merged = build();
  ASSERT_EQ(windowed->threads(), 2);

  // Identical pre-fault trajectories: run_until_stabilized drives the
  // merged-serial loop on both systems.
  sim::SimTime stab_w = windowed->run_until_stabilized(10'000'000);
  sim::SimTime stab_m = merged->run_until_stabilized(10'000'000);
  ASSERT_NE(stab_w, sim::kTimeInfinity);
  EXPECT_EQ(stab_w, stab_m);
  ASSERT_TRUE(windowed->token_counts_correct());

  // The same fault, from the same rng stream, lands identically.
  support::Rng fault_rng_w(99);
  support::Rng fault_rng_m(99);
  if (fault_case.fault == FaultKind::kTransient) {
    windowed->inject_transient_fault(fault_rng_w);
    merged->inject_transient_fault(fault_rng_m);
  } else {
    windowed->flood_channels(fault_rng_w, 3);
    merged->flood_channels(fault_rng_m, 3);
  }
  expect_same_census(windowed->census_oracle(), merged->census_oracle());

  // Recovery: the windowed loop on one side, merged-serial on the other.
  // Advance in lockstep until both report the legitimate population
  // again (same 40M-tick allowance as the topology-generic test).
  sim::SimTime t = windowed->engine().now();
  const sim::SimTime deadline = t + 40'000'000;
  while (t < deadline && !(windowed->token_counts_correct() &&
                           merged->token_counts_correct())) {
    t += 250'000;
    windowed->run_until(t);
    merged->engine().run_until(t);
  }
  t += 100'000;  // settle one more slice past the census transition
  windowed->run_until(t);
  merged->engine().run_until(t);

  EXPECT_TRUE(windowed->token_counts_correct()) << "windowed never recovered";
  EXPECT_TRUE(merged->token_counts_correct()) << "merged never recovered";
  EXPECT_GT(windowed->parallel_engine()->window_stats().windows, 0u);

  expect_same_clocks_and_counters(windowed->engine(), merged->engine());
  expect_same_census(windowed->census(), merged->census());
  expect_same_census(windowed->census(), windowed->census_oracle());
  for (NodeId v = 0; v < windowed->n(); ++v) {
    EXPECT_EQ(windowed->state_of(v), merged->state_of(v)) << "node " << v;
    EXPECT_EQ(windowed->need_of(v), merged->need_of(v)) << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    TopologiesAndFaults, ParallelFaultRecovery,
    ::testing::Values(
        FaultCase{TopologySpec::tree_random(40, 5), FaultKind::kTransient},
        FaultCase{TopologySpec::tree_random(40, 5), FaultKind::kGarbageFlood},
        FaultCase{TopologySpec::ring(32), FaultKind::kTransient},
        FaultCase{TopologySpec::ring(32), FaultKind::kGarbageFlood},
        FaultCase{TopologySpec::graph_random(20, 8, 3),
                  FaultKind::kTransient},
        FaultCase{TopologySpec::graph_random(20, 8, 3),
                  FaultKind::kGarbageFlood}),
    fault_case_name);

// -- topology churn: windowed repair == merged-serial repair -----------------

/// The online spanning-tree repair (clear channels, epoch drain, rebind
/// every process to the new overlay, re-mint) must leave the windowed
/// and merged-serial executions on identical trajectories -- the repair
/// mutates engine wiring and process state outside the event loop, so a
/// lane-visibility bug would show up here as a post-repair divergence.
class ParallelChurnDifferential : public ::testing::TestWithParam<int> {};

TEST_P(ParallelChurnDifferential, WindowedRepairMatchesMergedSerial) {
  const int lanes = GetParam();
  auto build = [&]() {
    return SystemBuilder()
        .topology(TopologySpec::graph_grid(5, 4))
        .kl(2, 4)
        .features(proto::Features::full().with_epoch_cut())
        .seed(29)
        .threads(lanes)
        .live_topology()
        .build();
  };
  std::unique_ptr<SystemBase> windowed = build();
  std::unique_ptr<SystemBase> merged = build();
  ASSERT_EQ(windowed->threads(), lanes);

  sim::SimTime stab_w = windowed->run_until_stabilized(10'000'000);
  sim::SimTime stab_m = merged->run_until_stabilized(10'000'000);
  ASSERT_NE(stab_w, sim::kTimeInfinity);
  EXPECT_EQ(stab_w, stab_m);

  // The same churn from identical rng streams picks the same links and
  // draws the same repair construction seed on both systems.
  FaultEvent event;
  event.kind = FaultKind::kLinkChurn;
  event.count = 2;
  support::Rng rng_w(123);
  support::Rng rng_m(123);
  TopologyFaultResult repair_w = windowed->apply_topology_fault(event, rng_w);
  TopologyFaultResult repair_m = merged->apply_topology_fault(event, rng_m);
  EXPECT_EQ(repair_w.links_changed, repair_m.links_changed);
  EXPECT_EQ(repair_w.parent_changes, repair_m.parent_changes);
  EXPECT_EQ(repair_w.repair_seed, repair_m.repair_seed);
  EXPECT_EQ(repair_w.attached_nodes, 20);
  expect_same_census(windowed->census_oracle(), merged->census_oracle());

  // Post-repair: the windowed loop on one side, merged-serial on the
  // other, in lockstep until both carry the legitimate population again.
  sim::SimTime t = windowed->engine().now();
  const sim::SimTime deadline = t + 40'000'000;
  while (t < deadline && !(windowed->token_counts_correct() &&
                           merged->token_counts_correct())) {
    t += 250'000;
    windowed->run_until(t);
    merged->engine().run_until(t);
  }
  t += 100'000;
  windowed->run_until(t);
  merged->engine().run_until(t);

  EXPECT_TRUE(windowed->token_counts_correct()) << "windowed never recovered";
  EXPECT_TRUE(merged->token_counts_correct()) << "merged never recovered";
  if (lanes > 1) {
    ASSERT_NE(windowed->parallel_engine(), nullptr);
    EXPECT_GT(windowed->parallel_engine()->window_stats().windows, 0u);
  }

  expect_same_clocks_and_counters(windowed->engine(), merged->engine());
  expect_same_census(windowed->census(), merged->census());
  expect_same_census(windowed->census(), windowed->census_oracle());
  for (NodeId v = 0; v < windowed->n(); ++v) {
    EXPECT_EQ(windowed->state_of(v), merged->state_of(v)) << "node " << v;
    EXPECT_EQ(windowed->need_of(v), merged->need_of(v)) << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Lanes, ParallelChurnDifferential,
                         ::testing::Values(1, 2, 4));

// -- window-safe monitor: lane-buffered observations == direct ---------------

/// Everything the SafetyMonitor can report after a run, plus the engine
/// clock/counters the run ended on. Two equal outcomes mean the
/// lane-buffered observation path reproduced the direct path exactly.
struct MonitoredOutcome {
  std::int64_t total_entries = 0;
  std::int64_t violation_count = 0;
  sim::SimTime last_violation = 0;
  std::int64_t stall_count = 0;
  std::vector<verify::SafetyMonitor::Stall> stalls;
  int units_in_use = 0;
  int in_cs_count = 0;
  sim::SimTime now = 0;
  std::uint64_t events_executed = 0;
  std::uint64_t messages_delivered = 0;
};

/// Runs a monitored chaos run at `lanes` threads: steady drop/dup chaos,
/// a watching SafetyMonitor with the stall watchdog armed, and more
/// requested units than l so some requests stall forever. Chaos engines
/// use per-entity sequencing, so the trajectory -- and therefore the
/// monitor's observation stream -- must be identical at every P.
MonitoredOutcome run_monitored(int lanes) {
  // dup_p well below drop_p: the in-flight population multiplies by
  // ~(1 + dup_p - drop_p) per hop, so dup-dominant configs explode
  // (see bench_chaos.cpp).
  sim::ChaosConfig chaos;
  chaos.drop_p = 0.02;
  chaos.dup_p = 0.005;
  SystemBuilder builder;
  builder.topology(TopologySpec::tree_random(48, 7))
      .kl(2, 5)
      .seed(11)
      .seed_tokens()
      .threads(lanes)
      .chaos(chaos);
  std::unique_ptr<SystemBase> system = builder.build();

  verify::SafetyMonitor safety(system->n(), 2, 5);
  system->add_listener(&safety);
  safety.set_stall_threshold(5'000);
  safety.watch(system->engine());

  // Raw requests, no WorkloadDriver: driver cycles are engine callbacks,
  // which force the merged-serial fallback -- this test exists to prove
  // the monitor alone does not.
  for (int v : {3, 9, 17, 25, 33, 41}) system->request(v, 2);
  system->run_until(120'000);

  if (lanes > 1) {
    EXPECT_NE(system->parallel_engine(), nullptr);
    // The monitor is window-safe: the run must have executed on the
    // windowed path, never the merged-serial fallback.
    EXPECT_GT(system->parallel_engine()->window_stats().windows, 0u);
    EXPECT_EQ(system->parallel_engine()->window_stats().merged_fallbacks, 0u);
  }

  MonitoredOutcome outcome;
  outcome.total_entries = safety.total_entries();
  outcome.violation_count = safety.violation_count();
  outcome.last_violation = safety.last_violation_time();
  outcome.stall_count = safety.stall_count();
  outcome.stalls = safety.stalls();
  outcome.units_in_use = safety.units_in_use();
  outcome.in_cs_count = safety.in_cs_count();
  outcome.now = system->engine().now();
  outcome.events_executed = system->engine().events_executed();
  outcome.messages_delivered = system->engine().messages_delivered();
  return outcome;
}

void expect_same_outcome(const MonitoredOutcome& a, const MonitoredOutcome& b,
                         int lanes) {
  EXPECT_EQ(a.total_entries, b.total_entries) << "P=" << lanes;
  EXPECT_EQ(a.violation_count, b.violation_count) << "P=" << lanes;
  EXPECT_EQ(a.last_violation, b.last_violation) << "P=" << lanes;
  EXPECT_EQ(a.stall_count, b.stall_count) << "P=" << lanes;
  ASSERT_EQ(a.stalls.size(), b.stalls.size()) << "P=" << lanes;
  for (std::size_t i = 0; i < a.stalls.size(); ++i) {
    EXPECT_EQ(a.stalls[i].node, b.stalls[i].node) << "stall " << i;
    EXPECT_EQ(a.stalls[i].requested_at, b.stalls[i].requested_at)
        << "stall " << i;
    EXPECT_EQ(a.stalls[i].flagged_at, b.stalls[i].flagged_at) << "stall " << i;
  }
  EXPECT_EQ(a.units_in_use, b.units_in_use) << "P=" << lanes;
  EXPECT_EQ(a.in_cs_count, b.in_cs_count) << "P=" << lanes;
  EXPECT_EQ(a.now, b.now) << "P=" << lanes;
  EXPECT_EQ(a.events_executed, b.events_executed) << "P=" << lanes;
  EXPECT_EQ(a.messages_delivered, b.messages_delivered) << "P=" << lanes;
}

TEST(MonitoredWindowed, ChaosRunBitIdenticalAcrossLaneCounts) {
  MonitoredOutcome direct = run_monitored(1);
  // The scenario must exercise the watchdog (6 x need-2 against l = 5
  // leaves permanently stalled requesters) and CS entries, or the
  // differential below would be comparing silence to silence.
  EXPECT_GT(direct.total_entries, 0);
  EXPECT_GT(direct.stall_count, 0);
  EXPECT_GT(direct.messages_delivered, 0u);

  for (int lanes : {2, 4}) {
    MonitoredOutcome windowed = run_monitored(lanes);
    expect_same_outcome(direct, windowed, lanes);
  }
}

// -- calendar ring auto-sizing (scheduler satellite) -------------------------

/// Echoes each message back with f0 decremented until it reaches zero.
class EchoProcess : public sim::Process {
 public:
  void on_message(int channel, const sim::Message& msg) override {
    ++deliveries;
    if (msg.f0 > 0) {
      sim::Message reply = msg;
      --reply.f0;
      send(channel, reply);
    }
  }
  void on_timer(int timer_id) override { timer_fires.push_back(timer_id); }

  int deliveries = 0;
  std::vector<int> timer_fires;

  using sim::Process::send;
  using sim::Process::set_timer;
};

struct EchoPair {
  explicit EchoPair(sim::DelayModel delays = {}, std::uint64_t seed = 1)
      : engine(delays, seed) {
    auto p0 = std::make_unique<EchoProcess>();
    auto p1 = std::make_unique<EchoProcess>();
    a = p0.get();
    b = p1.get();
    engine.add_process(std::move(p0));
    engine.add_process(std::move(p1));
    engine.connect(0, 0, 1, 0);
    engine.connect(1, 0, 0, 0);
  }
  sim::Engine engine;
  EchoProcess* a = nullptr;
  EchoProcess* b = nullptr;
};

TEST(CalendarAutoSize, DefaultDelayModelKeepsTheDefaultWindow) {
  EchoPair net;  // DelayModel{1, 16}
  net.engine.start();
  // The default window must not move: its routing counters are pinned
  // elsewhere (event_core_test) and must stay bit-identical.
  EXPECT_EQ(net.engine.stats().bucket_window, 1024u);
}

TEST(CalendarAutoSize, WideDelayModelGrowsTheWindow) {
  EchoPair net(sim::DelayModel{1000, 3000}, /*seed=*/5);
  net.engine.start();
  ASSERT_EQ(net.engine.stats().bucket_window, 4096u);

  // 64 concurrent echo chains keep the queue far above the sparse
  // regime (where pushes legitimately prefer the overflow heap), so
  // every delay <= 3000 must land on the grown ring. Stop well before
  // the chains drain (100 hops at >= 1000 ticks each) so the queue
  // never falls back into the sparse regime mid-measurement.
  for (int i = 0; i < 64; ++i) {
    sim::Message msg;
    msg.type = 1;
    msg.f0 = 100;
    net.a->send(0, msg);
  }
  net.engine.run_until(150'000);

  sim::EngineStats stats = net.engine.stats();
  EXPECT_GT(stats.scheduler.bucket_inserts, 1000u);
  // Only the initial sparse ramp-up (first ~dozen sends) may overflow.
  EXPECT_LE(stats.scheduler.overflow_pushes, 32u);
}

TEST(CalendarAutoSize, DeclaredTimerSpanGrowsTheWindow) {
  EchoPair net;  // default delays would keep the 1024 window
  net.engine.declare_timer_span(1500);
  net.engine.start();
  EXPECT_EQ(net.engine.stats().bucket_window, 2048u);

  net.a->set_timer(0, 1500);
  net.engine.run_until(5'000);
  ASSERT_EQ(net.a->timer_fires.size(), 1u);
}

// -- counter widths (overflow satellite) -------------------------------------

TEST(EngineStatsWidth, PerEventCountersAreSixtyFourBit) {
  // A 10^6-node run executes well beyond 2^32 events; every counter that
  // grows per event (or per scheduler operation) must be 64-bit. These
  // are compile-time pins so a narrowing refactor fails loudly here.
  using sim::Engine;
  using sim::EngineStats;
  using sim::SchedulerCounters;
  static_assert(
      std::is_same_v<decltype(EngineStats::events_executed), std::uint64_t>);
  static_assert(
      std::is_same_v<decltype(EngineStats::messages_sent), std::uint64_t>);
  static_assert(
      std::is_same_v<decltype(EngineStats::messages_delivered), std::uint64_t>);
  static_assert(std::is_same_v<decltype(EngineStats::callbacks_scheduled),
                               std::uint64_t>);
  static_assert(std::is_same_v<decltype(EngineStats::callback_slots_created),
                               std::uint64_t>);
  static_assert(
      std::is_same_v<decltype(EngineStats::max_heap_size), std::uint64_t>);
  static_assert(
      std::is_same_v<decltype(EngineStats::in_flight_walks), std::uint64_t>);
  static_assert(
      std::is_same_v<decltype(EngineStats::bucket_window), std::uint64_t>);
  static_assert(std::is_same_v<decltype(SchedulerCounters::bucket_inserts),
                               std::uint64_t>);
  static_assert(std::is_same_v<decltype(SchedulerCounters::bucket_scans),
                               std::uint64_t>);
  static_assert(std::is_same_v<decltype(SchedulerCounters::overflow_pushes),
                               std::uint64_t>);
  static_assert(std::is_same_v<decltype(SchedulerCounters::overflow_pops),
                               std::uint64_t>);
  static_assert(
      std::is_same_v<decltype(sim::ParallelEngine::WindowStats::windows),
                     std::uint64_t>);
  static_assert(std::is_same_v<
                decltype(sim::ParallelEngine::WindowStats::merged_fallbacks),
                std::uint64_t>);
  // Accessor return types must not narrow either.
  static_assert(std::is_same_v<decltype(std::declval<const Engine&>()
                                            .messages_sent()),
                               std::uint64_t>);
  static_assert(std::is_same_v<decltype(std::declval<const Engine&>()
                                            .messages_delivered()),
                               std::uint64_t>);
  static_assert(std::is_same_v<decltype(std::declval<const Engine&>()
                                            .events_executed()),
                               std::uint64_t>);
  static_assert(std::is_same_v<decltype(std::declval<const Engine&>()
                                            .in_flight_messages()),
                               std::uint64_t>);
  static_assert(std::is_same_v<decltype(std::declval<const Engine&>()
                                            .in_flight_of_type(1)),
                               std::uint64_t>);
  static_assert(std::is_same_v<decltype(std::declval<const Engine&>()
                                            .sent_of_type(1)),
                               std::uint64_t>);
  SUCCEED();
}

}  // namespace
}  // namespace klex
