// End-to-end smoke test: the full protocol on a small tree grants a
// simple request and the token population is correct.
#include <gtest/gtest.h>

#include "api/system.hpp"
#include "tree/tree.hpp"

namespace klex {
namespace {

TEST(Smoke, SingleRequestIsGranted) {
  SystemConfig config;
  config.tree = tree::figure1_tree();
  config.k = 2;
  config.l = 3;
  config.seed = 1;
  System system(config);

  // Let the controller bootstrap the token population.
  sim::SimTime stabilized = system.run_until_stabilized(1'000'000);
  ASSERT_NE(stabilized, sim::kTimeInfinity) << "never stabilized";
  EXPECT_TRUE(system.token_counts_correct());

  system.request(3, 2);
  EXPECT_EQ(system.state_of(3), proto::AppState::kReq);
  system.run_until(system.engine().now() + 200'000);
  EXPECT_EQ(system.state_of(3), proto::AppState::kIn);
}

}  // namespace
}  // namespace klex
