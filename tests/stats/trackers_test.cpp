#include <gtest/gtest.h>

#include "stats/throughput.hpp"
#include "stats/waiting_time.hpp"

namespace klex::stats {
namespace {

TEST(WaitingTime, CountsEntriesByOthers) {
  WaitingTimeTracker tracker(3);
  // Node 0 requests; nodes 1 and 2 enter twice before node 0 gets in.
  tracker.on_request(0, 1, 0);
  tracker.on_enter_cs(1, 1, 5);
  tracker.on_enter_cs(2, 1, 7);
  tracker.on_enter_cs(1, 1, 12);
  tracker.on_enter_cs(0, 1, 20);
  ASSERT_EQ(tracker.waits().count(), 1u);
  EXPECT_DOUBLE_EQ(tracker.waits().max(), 3.0);
  EXPECT_EQ(tracker.global_entries(), 4);
}

TEST(WaitingTime, ZeroWaitWhenImmediatelyServed) {
  WaitingTimeTracker tracker(2);
  tracker.on_request(1, 1, 0);
  tracker.on_enter_cs(1, 1, 1);
  EXPECT_DOUBLE_EQ(tracker.waits().max(), 0.0);
}

TEST(WaitingTime, EntryWithoutRequestIgnoredForSamples) {
  WaitingTimeTracker tracker(2);
  tracker.on_enter_cs(0, 1, 1);  // corruption-induced
  EXPECT_EQ(tracker.waits().count(), 0u);
  EXPECT_EQ(tracker.global_entries(), 1);
}

TEST(WaitingTime, ResetSamplesKeepsCounter) {
  WaitingTimeTracker tracker(2);
  tracker.on_request(0, 1, 0);
  tracker.on_enter_cs(0, 1, 1);
  tracker.reset_samples();
  EXPECT_EQ(tracker.waits().count(), 0u);
  EXPECT_EQ(tracker.global_entries(), 1);
  // In-flight requests spanning the reset still produce a sample.
  tracker.on_request(1, 1, 2);
  tracker.on_enter_cs(0, 1, 3);
  tracker.on_enter_cs(1, 1, 4);
  EXPECT_EQ(tracker.waits().count(), 1u);
  EXPECT_DOUBLE_EQ(tracker.waits().max(), 1.0);
}

TEST(WaitingTime, Theorem2BoundFormula) {
  EXPECT_EQ(theorem2_bound(2, 1), 1);        // (2·2−3)² = 1
  EXPECT_EQ(theorem2_bound(3, 1), 9);        // 3² = 9
  EXPECT_EQ(theorem2_bound(8, 5), 5 * 169);  // 13²·5
  EXPECT_THROW(theorem2_bound(1, 1), std::invalid_argument);
}

TEST(Throughput, CountsEntriesAndUnits) {
  ThroughputTracker tracker(2);
  tracker.start_window(0);
  tracker.on_enter_cs(0, 2, 10);
  tracker.on_exit_cs(0, 30);  // 2 units × 20 ticks
  tracker.on_enter_cs(1, 1, 20);
  EXPECT_EQ(tracker.entries(), 2);
  EXPECT_EQ(tracker.units_granted(), 3);
  // At t=50: done 40 + in-progress 1 × 30.
  EXPECT_DOUBLE_EQ(tracker.unit_time(50), 70.0);
}

TEST(Throughput, RatesOverWindow) {
  ThroughputTracker tracker(1);
  tracker.start_window(1000);
  tracker.on_enter_cs(0, 2, 1100);
  tracker.on_exit_cs(0, 1200);
  // 1 entry over 1000 ticks = 1000 entries per mtick.
  EXPECT_DOUBLE_EQ(tracker.entries_per_mtick(2000), 1000.0);
  // Utilization: 200 unit-ticks over (1000 ticks × l=2) = 0.1.
  EXPECT_DOUBLE_EQ(tracker.mean_utilization(2000, 2), 0.1);
}

TEST(Throughput, WindowRestartDiscardsHistory) {
  ThroughputTracker tracker(1);
  tracker.start_window(0);
  tracker.on_enter_cs(0, 1, 10);
  tracker.on_exit_cs(0, 20);
  tracker.start_window(100);
  EXPECT_EQ(tracker.entries(), 0);
  EXPECT_DOUBLE_EQ(tracker.unit_time(200), 0.0);
}

TEST(Throughput, HoldSpanningWindowEdgeCountsFromEdge) {
  ThroughputTracker tracker(1);
  tracker.start_window(0);
  tracker.on_enter_cs(0, 2, 10);
  tracker.start_window(100);  // hold in progress
  EXPECT_DOUBLE_EQ(tracker.unit_time(150), 2.0 * 50);
}

TEST(Throughput, EmptyWindowRatesAreZero) {
  ThroughputTracker tracker(1);
  tracker.start_window(100);
  EXPECT_DOUBLE_EQ(tracker.entries_per_mtick(100), 0.0);
  EXPECT_DOUBLE_EQ(tracker.mean_utilization(50, 1), 0.0);
}

}  // namespace
}  // namespace klex::stats
