// Property: online spanning-tree repair == offline re-extraction.
//
// After every GraphSystem topology repair, re-running the stree
// construction offline over the surviving graph -- same delay model, same
// beacon period, and the repair's own derived seed
// (last_repair().repair_seed) -- must extract exactly the parent set the
// live system rebound its processes to. This pins the repair path to the
// same convergence the boot path promises: the online overlay is never an
// approximation of the spanning-tree layer, it IS the spanning-tree
// layer's output on the surviving component.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "api/builder.hpp"
#include "api/graph_system.hpp"
#include "stree/graph.hpp"
#include "stree/spanning_tree.hpp"
#include "support/rng.hpp"
#include "tree/tree.hpp"

namespace klex {
namespace {

std::unique_ptr<SystemBase> make_live(stree::Graph graph, std::uint64_t seed) {
  return SystemBuilder()
      .graph(std::move(graph))
      .kl(2, 4)
      .features(proto::Features::full().with_epoch_cut())
      .seed(seed)
      .live_topology()
      .build();
}

// Replays the repair's spanning-tree construction offline and compares
// the extracted parents (mapped back to original ids) against the parents
// the live system actually installed.
void expect_repair_matches_offline(GraphSystem& graph) {
  stree::SpanningTreeSystem::Config config;
  config.graph = graph.surviving_graph();
  config.beacon_period = 256;  // GraphSystemConfig default, unchanged here
  config.seed = graph.last_repair().repair_seed;
  stree::SpanningTreeSystem offline(std::move(config));
  ASSERT_NE(offline.run_until_converged(4'000'000), sim::kTimeInfinity);
  auto extracted = offline.try_extract_tree();
  ASSERT_TRUE(extracted.has_value());

  std::vector<NodeId> ids = graph.surviving_ids();
  ASSERT_EQ(extracted->size(), static_cast<int>(ids.size()));
  EXPECT_EQ(ids[0], 0) << "the root must survive as original node 0";
  const std::vector<tree::NodeId>& live_parents = graph.current_parents();
  std::vector<std::uint8_t> surviving(
      static_cast<std::size_t>(graph.graph().size()), 0);
  for (std::size_t cv = 0; cv < ids.size(); ++cv) {
    surviving[static_cast<std::size_t>(ids[cv])] = 1;
    tree::NodeId parent = extracted->parent(static_cast<tree::NodeId>(cv));
    tree::NodeId expected =
        parent == tree::kNoParent ? tree::kNoParent
                                  : ids[static_cast<std::size_t>(parent)];
    EXPECT_EQ(live_parents[static_cast<std::size_t>(ids[cv])], expected)
        << "node " << ids[cv] << " rebound to a different parent than the "
        << "offline construction extracts";
  }
  // Detached nodes carry no parent at all.
  for (NodeId v = 0; v < graph.graph().size(); ++v) {
    if (surviving[static_cast<std::size_t>(v)] == 0) {
      EXPECT_FALSE(graph.attached(v));
      EXPECT_EQ(live_parents[static_cast<std::size_t>(v)], tree::kNoParent);
    }
  }
}

FaultEvent random_event(FaultKind kind, int count, bool restore) {
  FaultEvent event;
  event.kind = kind;
  event.count = count;
  event.restore = restore;
  return event;
}

TEST(ChurnRepairProperty, GridLinkChurnRounds) {
  auto system = make_live(stree::grid(6, 5), 101);
  auto* graph = dynamic_cast<GraphSystem*>(system.get());
  ASSERT_NE(graph, nullptr);
  support::Rng rng(0x617Du);
  // Fail rounds of links, then restore some: every repair must match its
  // offline replay, whatever the surviving component looks like.
  const FaultEvent plan[] = {
      random_event(FaultKind::kLinkChurn, 3, false),
      random_event(FaultKind::kLinkChurn, 4, false),
      random_event(FaultKind::kLinkChurn, 5, true),
      random_event(FaultKind::kLinkChurn, 2, false),
  };
  int round = 0;
  for (const FaultEvent& event : plan) {
    SCOPED_TRACE(round++);
    graph->apply_topology_fault(event, rng);
    expect_repair_matches_offline(*graph);
    sim::SimTime now = system->engine().now();
    ASSERT_NE(system->run_until_stabilized(now + 10'000'000),
              sim::kTimeInfinity);
  }
  EXPECT_EQ(graph->repair_count(), 4);
}

TEST(ChurnRepairProperty, RandomGraphMixedChurn) {
  support::Rng topo_rng(7);
  auto system = make_live(stree::random_connected(40, 30, topo_rng), 211);
  auto* graph = dynamic_cast<GraphSystem*>(system.get());
  ASSERT_NE(graph, nullptr);
  support::Rng rng(0x52BDu);
  const FaultEvent plan[] = {
      random_event(FaultKind::kNodeCrash, 4, false),
      random_event(FaultKind::kLinkChurn, 6, false),
      random_event(FaultKind::kNodeCrash, 3, true),
      random_event(FaultKind::kLinkChurn, 6, true),
      random_event(FaultKind::kNodeCrash, 2, false),
  };
  int round = 0;
  for (const FaultEvent& event : plan) {
    SCOPED_TRACE(round++);
    graph->apply_topology_fault(event, rng);
    expect_repair_matches_offline(*graph);
    sim::SimTime now = system->engine().now();
    ASSERT_NE(system->run_until_stabilized(now + 10'000'000),
              sim::kTimeInfinity);
  }
  EXPECT_EQ(graph->repair_count(), 5);
}

TEST(ChurnRepairProperty, RepairSeedsAreDistinctPerRepair) {
  auto system = make_live(stree::grid(4, 4), 307);
  auto* graph = dynamic_cast<GraphSystem*>(system.get());
  ASSERT_NE(graph, nullptr);
  support::Rng rng(0x5EEDu);
  graph->apply_topology_fault(random_event(FaultKind::kLinkChurn, 1, false),
                              rng);
  std::uint64_t first = graph->last_repair().repair_seed;
  graph->apply_topology_fault(random_event(FaultKind::kLinkChurn, 1, true),
                              rng);
  std::uint64_t second = graph->last_repair().repair_seed;
  EXPECT_NE(first, second)
      << "successive repairs must draw independent construction seeds";
}

}  // namespace
}  // namespace klex
