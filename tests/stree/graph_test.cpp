#include "stree/graph.hpp"

#include <gtest/gtest.h>

namespace klex::stree {
namespace {

TEST(Graph, FromEdgesBasics) {
  Graph g = Graph::from_edges(3, {{0, 1}, {1, 2}});
  EXPECT_EQ(g.size(), 3);
  EXPECT_EQ(g.edge_count(), 2);
  EXPECT_EQ(g.degree(1), 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(Graph, RejectsMalformedInput) {
  EXPECT_THROW(Graph::from_edges(2, {{0, 0}}), std::invalid_argument);
  EXPECT_THROW(Graph::from_edges(2, {{0, 1}, {1, 0}}),
               std::invalid_argument);  // parallel
  EXPECT_THROW(Graph::from_edges(2, {{0, 5}}), std::invalid_argument);
  EXPECT_THROW(Graph::from_edges(3, {{0, 1}}), std::invalid_argument);  // disconnected
}

TEST(Graph, ReverseChannelRoundTrip) {
  Graph g = grid(3, 3);
  for (NodeId v = 0; v < g.size(); ++v) {
    for (int c = 0; c < g.degree(v); ++c) {
      NodeId q = g.neighbor(v, c);
      EXPECT_EQ(g.neighbor(q, g.reverse_channel(v, c)), v);
    }
  }
}

TEST(Graph, GridShape) {
  Graph g = grid(4, 3);
  EXPECT_EQ(g.size(), 12);
  EXPECT_EQ(g.edge_count(), 3 * 3 + 4 * 2);  // horizontal + vertical
  EXPECT_EQ(g.degree(0), 2);   // corner
  EXPECT_EQ(g.degree(5), 4);   // interior
}

TEST(Graph, CycleShape) {
  Graph g = cycle_graph(5);
  EXPECT_EQ(g.edge_count(), 5);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 2);
  EXPECT_THROW(cycle_graph(2), std::invalid_argument);
}

TEST(Graph, CompleteShape) {
  Graph g = complete_graph(5);
  EXPECT_EQ(g.edge_count(), 10);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 4);
}

TEST(Graph, RandomConnectedIsConnectedWithExtras) {
  support::Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = random_connected(20, 15, rng);
    EXPECT_EQ(g.size(), 20);
    EXPECT_GE(g.edge_count(), 19);
    EXPECT_LE(g.edge_count(), 19 + 15);
  }
}

TEST(Graph, RandomConnectedExtraBudgetClamped) {
  support::Rng rng(32);
  // n=3 has at most 3 edges; asking for 100 extras must not throw.
  Graph g = random_connected(3, 100, rng);
  EXPECT_LE(g.edge_count(), 3);
}

}  // namespace
}  // namespace klex::stree
