// Spanning-tree extraction on random connected graphs: the properties
// GraphSystem depends on. The existing spanning_tree_test checks
// convergence; these tests check the *extracted overlay* on many random
// topologies -- every overlay edge is a physical link, depths are exact
// BFS distances, and extraction is deterministic per seed.
#include <gtest/gtest.h>

#include <queue>
#include <vector>

#include "stree/graph.hpp"
#include "stree/spanning_tree.hpp"
#include "support/rng.hpp"

namespace klex::stree {
namespace {

std::vector<int> bfs_distances(const Graph& g) {
  std::vector<int> dist(static_cast<std::size_t>(g.size()), -1);
  std::queue<NodeId> frontier;
  frontier.push(0);
  dist[0] = 0;
  while (!frontier.empty()) {
    NodeId u = frontier.front();
    frontier.pop();
    for (int c = 0; c < g.degree(u); ++c) {
      NodeId v = g.neighbor(u, c);
      if (dist[static_cast<std::size_t>(v)] == -1) {
        dist[static_cast<std::size_t>(v)] =
            dist[static_cast<std::size_t>(u)] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

TEST(RandomGraphOverlay, ExtractedTreesAreBfsTreesOfPhysicalLinks) {
  support::Rng topo_rng(11);
  for (int trial = 0; trial < 8; ++trial) {
    int n = 8 + static_cast<int>(topo_rng.next_below(17));  // 8..24
    int extra = static_cast<int>(topo_rng.next_below(10));
    Graph g = random_connected(n, extra, topo_rng);

    SpanningTreeSystem::Config config;
    config.graph = g;
    config.seed = 400 + static_cast<std::uint64_t>(trial);
    SpanningTreeSystem system(std::move(config));
    ASSERT_NE(system.run_until_converged(4'000'000), sim::kTimeInfinity)
        << "trial " << trial << " n=" << n << " extra=" << extra;

    auto extracted = system.try_extract_tree();
    ASSERT_TRUE(extracted.has_value()) << "trial " << trial;
    ASSERT_EQ(extracted->size(), g.size());

    std::vector<int> dist = bfs_distances(g);
    for (tree::NodeId v = 1; v < extracted->size(); ++v) {
      EXPECT_TRUE(g.has_edge(v, extracted->parent(v)))
          << "overlay edge " << v << "-" << extracted->parent(v)
          << " is not a physical link (trial " << trial << ")";
      EXPECT_EQ(extracted->depth(v), dist[static_cast<std::size_t>(v)])
          << "node " << v << " depth is not its BFS distance (trial "
          << trial << ")";
    }
  }
}

TEST(RandomGraphOverlay, ExtractionIsDeterministicPerSeed) {
  support::Rng topo_rng(19);
  Graph g = random_connected(14, 8, topo_rng);
  auto extract = [&g](std::uint64_t seed) {
    SpanningTreeSystem::Config config;
    config.graph = g;
    config.seed = seed;
    SpanningTreeSystem system(std::move(config));
    EXPECT_NE(system.run_until_converged(4'000'000), sim::kTimeInfinity);
    auto tree = system.try_extract_tree();
    EXPECT_TRUE(tree.has_value());
    return *tree;
  };
  EXPECT_EQ(extract(5), extract(5));
}

TEST(RandomGraphOverlay, RecoversAfterFaultOnRandomGraphs) {
  support::Rng topo_rng(23);
  for (int trial = 0; trial < 4; ++trial) {
    Graph g = random_connected(12, 5, topo_rng);
    SpanningTreeSystem::Config config;
    config.graph = g;
    config.seed = 700 + static_cast<std::uint64_t>(trial);
    SpanningTreeSystem system(std::move(config));
    ASSERT_NE(system.run_until_converged(4'000'000), sim::kTimeInfinity);

    support::Rng fault_rng(900 + static_cast<std::uint64_t>(trial));
    system.inject_transient_fault(fault_rng);
    EXPECT_NE(system.run_until_converged(system.engine().now() + 8'000'000),
              sim::kTimeInfinity)
        << "trial " << trial << " never re-converged";
    EXPECT_TRUE(system.try_extract_tree().has_value());
  }
}

TEST(RandomGraphOverlay, DenseAndSparseExtremes) {
  // The two ends GraphSystem must handle: a bare cycle (tree + 1 edge)
  // and a complete graph (every pair adjacent, star overlay).
  SpanningTreeSystem::Config sparse;
  sparse.graph = cycle_graph(16);
  sparse.seed = 3;
  SpanningTreeSystem sparse_system(std::move(sparse));
  ASSERT_NE(sparse_system.run_until_converged(4'000'000),
            sim::kTimeInfinity);
  auto sparse_tree = sparse_system.try_extract_tree();
  ASSERT_TRUE(sparse_tree.has_value());
  EXPECT_EQ(sparse_tree->height(), 8);  // both arcs meet opposite the root

  SpanningTreeSystem::Config dense;
  dense.graph = complete_graph(10);
  dense.seed = 4;
  SpanningTreeSystem dense_system(std::move(dense));
  ASSERT_NE(dense_system.run_until_converged(4'000'000), sim::kTimeInfinity);
  auto dense_tree = dense_system.try_extract_tree();
  ASSERT_TRUE(dense_tree.has_value());
  EXPECT_EQ(dense_tree->height(), 1);  // every node adjacent to the root
}

}  // namespace
}  // namespace klex::stree
