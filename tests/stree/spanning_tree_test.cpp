#include "stree/spanning_tree.hpp"

#include <gtest/gtest.h>

#include "stree/graph.hpp"
#include "tree/tree.hpp"

namespace klex::stree {
namespace {

SpanningTreeSystem::Config config_for(Graph g, std::uint64_t seed) {
  SpanningTreeSystem::Config config;
  config.graph = std::move(g);
  config.seed = seed;
  return config;
}

TEST(SpanningTree, ConvergesOnCycle) {
  SpanningTreeSystem system(config_for(cycle_graph(7), 51));
  EXPECT_NE(system.run_until_converged(1'000'000), sim::kTimeInfinity);
}

TEST(SpanningTree, ConvergesOnGrid) {
  SpanningTreeSystem system(config_for(grid(4, 4), 52));
  ASSERT_NE(system.run_until_converged(2'000'000), sim::kTimeInfinity);
  // BFS distances on the grid: node (x, y) has distance x + y.
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) {
      EXPECT_EQ(system.node(y * 4 + x).dist(), x + y);
    }
  }
}

TEST(SpanningTree, ConvergesOnRandomGraphs) {
  support::Rng rng(53);
  for (int trial = 0; trial < 5; ++trial) {
    SpanningTreeSystem system(
        config_for(random_connected(15, 10, rng), 54 + trial));
    EXPECT_NE(system.run_until_converged(2'000'000), sim::kTimeInfinity)
        << "trial " << trial;
  }
}

TEST(SpanningTree, ExtractedTreeIsValidAndBfs) {
  Graph g = grid(3, 3);
  SpanningTreeSystem system(config_for(g, 55));
  ASSERT_NE(system.run_until_converged(2'000'000), sim::kTimeInfinity);
  auto extracted = system.try_extract_tree();
  ASSERT_TRUE(extracted.has_value());
  EXPECT_EQ(extracted->size(), 9);
  // Tree depth equals BFS distance.
  for (tree::NodeId v = 0; v < extracted->size(); ++v) {
    EXPECT_EQ(extracted->depth(v), system.node(v).dist());
  }
}

TEST(SpanningTree, RecoversFromTransientFault) {
  SpanningTreeSystem system(config_for(grid(4, 3), 56));
  ASSERT_NE(system.run_until_converged(2'000'000), sim::kTimeInfinity);
  support::Rng fault_rng(57);
  for (int fault = 0; fault < 3; ++fault) {
    system.inject_transient_fault(fault_rng);
    EXPECT_NE(
        system.run_until_converged(system.engine().now() + 5'000'000),
        sim::kTimeInfinity)
        << "fault " << fault;
  }
}

TEST(SpanningTree, TreeInputYieldsThatTree) {
  // On a graph that is already a tree the unique spanning tree is the
  // graph itself.
  Graph g = Graph::from_edges(5, {{0, 1}, {0, 2}, {1, 3}, {1, 4}});
  SpanningTreeSystem system(config_for(g, 58));
  ASSERT_NE(system.run_until_converged(1'000'000), sim::kTimeInfinity);
  auto extracted = system.try_extract_tree();
  ASSERT_TRUE(extracted.has_value());
  EXPECT_EQ(extracted->parent(1), 0);
  EXPECT_EQ(extracted->parent(2), 0);
  EXPECT_EQ(extracted->parent(3), 1);
  EXPECT_EQ(extracted->parent(4), 1);
}

TEST(SpanningTree, BeaconCodecRoundTrip) {
  sim::Message msg = make_beacon(0x1234567890ll, 42);
  EXPECT_EQ(msg.type, kBeaconType);
  // Round-trip through the private decoding is exercised by delivery; here
  // check the fields are split as documented.
  EXPECT_EQ(msg.f2, 42);
}

TEST(SpanningTree, RejectsTrivialGraphs) {
  SpanningTreeSystem::Config config;
  config.graph = Graph::from_edges(1, {});
  EXPECT_THROW(SpanningTreeSystem{config}, std::invalid_argument);
}

}  // namespace
}  // namespace klex::stree
