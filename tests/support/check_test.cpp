#include "support/check.hpp"

#include <gtest/gtest.h>

namespace klex::support {
namespace {

TEST(Check, PassingConditionDoesNothing) {
  EXPECT_NO_THROW(KLEX_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(KLEX_REQUIRE(true, "fine"));
}

TEST(Check, FailingCheckThrowsCheckFailure) {
  EXPECT_THROW(KLEX_CHECK(false), CheckFailure);
}

TEST(Check, FailingRequireThrowsInvalidArgument) {
  EXPECT_THROW(KLEX_REQUIRE(false), std::invalid_argument);
}

TEST(Check, MessageIncludesExpressionAndValues) {
  try {
    int x = 41;
    KLEX_CHECK(x == 42, "x was ", x);
    FAIL() << "should have thrown";
  } catch (const CheckFailure& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("x == 42"), std::string::npos);
    EXPECT_NE(what.find("x was 41"), std::string::npos);
    EXPECT_NE(what.find("check_test.cpp"), std::string::npos);
  }
}

TEST(Check, RequireMessageFormatting) {
  try {
    KLEX_REQUIRE(false, "need ", 1, " <= k <= ", 5);
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("need 1 <= k <= 5"), std::string::npos);
  }
}

TEST(Check, SideEffectsInConditionEvaluatedOnce) {
  int calls = 0;
  auto bump = [&calls] {
    ++calls;
    return true;
  };
  KLEX_CHECK(bump());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace klex::support
