// Randomized differential coverage for the support containers the
// protocol state machines (and now GraphSystem's overlay wiring) lean on:
// FixedMultiset models RSet, SmallVec backs it and the per-node tables.
// Each container is driven with a long random operation sequence and
// checked against the obvious reference container after every step.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "support/fixed_multiset.hpp"
#include "support/rng.hpp"
#include "support/small_vec.hpp"

namespace klex::support {
namespace {

TEST(FixedMultisetStress, MatchesReferenceMultiset) {
  const int kDomain = 6;
  const int kMaxSize = 8;
  Rng rng(2024);
  FixedMultiset mine(kDomain, kMaxSize);
  std::multiset<int> reference;

  for (int step = 0; step < 5000; ++step) {
    std::uint64_t op = rng.next_below(10);
    if (op < 5 && mine.size() < kMaxSize) {
      int label = static_cast<int>(rng.next_below(kDomain));
      mine.insert(label);
      reference.insert(label);
    } else if (op < 8 && !reference.empty()) {
      // Erase a uniformly random present element.
      auto it = reference.begin();
      std::advance(it, static_cast<long>(rng.next_below(reference.size())));
      mine.erase_one(*it);
      reference.erase(it);
    } else if (op == 8) {
      mine.clear();
      reference.clear();
    }

    ASSERT_EQ(mine.size(), static_cast<int>(reference.size())) << step;
    int total = 0;
    for (int label = 0; label < kDomain; ++label) {
      ASSERT_EQ(mine.count(label),
                static_cast<int>(reference.count(label)))
          << "label " << label << " at step " << step;
      total += mine.count(label);
    }
    ASSERT_EQ(total, mine.size()) << step;
    int visited = 0;
    mine.for_each([&](int label, int multiplicity) {
      EXPECT_EQ(multiplicity, mine.count(label));
      EXPECT_GT(multiplicity, 0);
      visited += multiplicity;
    });
    ASSERT_EQ(visited, mine.size()) << step;
  }
}

TEST(SmallVecStress, MatchesReferenceVectorAcrossSpillBoundary) {
  Rng rng(77);
  SmallVec<int, 4> mine;
  std::vector<int> reference;

  for (int step = 0; step < 5000; ++step) {
    std::uint64_t op = rng.next_below(10);
    if (op < 5) {
      int value = static_cast<int>(rng.next_below(1000));
      mine.push_back(value);
      reference.push_back(value);
    } else if (op < 7 && !reference.empty()) {
      mine.pop_back();
      reference.pop_back();
    } else if (op < 9 && !reference.empty()) {
      std::size_t index = rng.pick_index(reference.size());
      mine.erase_at(index);
      reference.erase(reference.begin() + static_cast<long>(index));
    } else if (op == 9 && reference.size() > 16) {
      // Shrink back below the inline capacity; later pushes re-cross the
      // spill boundary, the historically bug-prone transition.
      mine.clear();
      reference.clear();
    }

    ASSERT_EQ(mine.size(), reference.size()) << step;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      ASSERT_EQ(mine[i], reference[i]) << "index " << i << " step " << step;
    }
  }
}

TEST(SmallVecStress, ReserveNeverShrinksAndKeepsContents) {
  Rng rng(31);
  SmallVec<int, 2> vec;
  std::vector<int> reference;
  for (int round = 0; round < 100; ++round) {
    int value = static_cast<int>(rng.next_below(100));
    vec.push_back(value);
    reference.push_back(value);
    vec.reserve(rng.next_below(64));
    ASSERT_GE(vec.capacity(), vec.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      ASSERT_EQ(vec[i], reference[i]);
    }
  }
}

}  // namespace
}  // namespace klex::support
