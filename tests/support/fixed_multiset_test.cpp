#include "support/fixed_multiset.hpp"

#include <gtest/gtest.h>

namespace klex::support {
namespace {

TEST(FixedMultiset, StartsEmpty) {
  FixedMultiset set(4, 3);
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.size(), 0);
  EXPECT_EQ(set.max_size(), 3);
  EXPECT_EQ(set.label_domain(), 4);
}

TEST(FixedMultiset, InsertAndCount) {
  FixedMultiset set(3, 5);
  set.insert(0);
  set.insert(2);
  set.insert(2);
  EXPECT_EQ(set.size(), 3);
  EXPECT_EQ(set.count(0), 1);
  EXPECT_EQ(set.count(1), 0);
  EXPECT_EQ(set.count(2), 2);
}

TEST(FixedMultiset, MultiplicityBeyondOne) {
  // RSet is a multiset: the paper stresses it can contain duplicates
  // (several tokens received from the same channel).
  FixedMultiset set(1, 4);
  for (int i = 0; i < 4; ++i) set.insert(0);
  EXPECT_EQ(set.count(0), 4);
  EXPECT_EQ(set.size(), 4);
}

TEST(FixedMultiset, InsertBeyondCapacityThrows) {
  FixedMultiset set(2, 1);
  set.insert(0);
  EXPECT_THROW(set.insert(1), CheckFailure);
}

TEST(FixedMultiset, InsertOutOfDomainThrows) {
  FixedMultiset set(2, 4);
  EXPECT_THROW(set.insert(2), CheckFailure);
  EXPECT_THROW(set.insert(-1), CheckFailure);
}

TEST(FixedMultiset, EraseOne) {
  FixedMultiset set(2, 4);
  set.insert(1);
  set.insert(1);
  set.erase_one(1);
  EXPECT_EQ(set.count(1), 1);
  set.erase_one(1);
  EXPECT_EQ(set.count(1), 0);
  EXPECT_THROW(set.erase_one(1), CheckFailure);
}

TEST(FixedMultiset, ClearResets) {
  FixedMultiset set(3, 3);
  set.insert(0);
  set.insert(1);
  set.clear();
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.count(0), 0);
  set.insert(2);  // still usable
  EXPECT_EQ(set.size(), 1);
}

TEST(FixedMultiset, ForEachVisitsNonZeroLabels) {
  FixedMultiset set(4, 6);
  set.insert(1);
  set.insert(3);
  set.insert(3);
  int visited = 0, total = 0;
  set.for_each([&](int label, int mult) {
    ++visited;
    total += mult;
    EXPECT_TRUE(label == 1 || label == 3);
  });
  EXPECT_EQ(visited, 2);
  EXPECT_EQ(total, 3);
}

TEST(FixedMultiset, EqualityComparesContents) {
  FixedMultiset a(2, 3), b(2, 3);
  EXPECT_TRUE(a == b);
  a.insert(0);
  EXPECT_FALSE(a == b);
  b.insert(0);
  EXPECT_TRUE(a == b);
}

TEST(FixedMultiset, ZeroCapacityAllowsNothing) {
  FixedMultiset set(2, 0);
  EXPECT_THROW(set.insert(0), CheckFailure);
}

}  // namespace
}  // namespace klex::support
