#include "support/histogram.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/check.hpp"

namespace klex::support {
namespace {

TEST(Summary, BasicMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  // Sample variance of the classic dataset: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(Summary, SingleSampleVarianceZero) {
  Summary s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Summary, EmptyAccessorsThrow) {
  Summary s;
  EXPECT_THROW(s.mean(), CheckFailure);
  EXPECT_THROW(s.min(), CheckFailure);
  EXPECT_THROW(s.max(), CheckFailure);
  EXPECT_THROW(s.variance(), CheckFailure);
}

TEST(Summary, MergeMatchesCombinedStream) {
  Summary all, left, right;
  for (int i = 0; i < 100; ++i) {
    double x = std::sin(i) * 10.0;
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Summary, MergeWithEmptySides) {
  Summary a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  b.add(5.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
}

TEST(Histogram, ExactQuantilesSmall) {
  Histogram h;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) h.add(x);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 2.0);
}

TEST(Histogram, QuantileInterpolates) {
  Histogram h;
  h.add(0.0);
  h.add(10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.75), 7.5);
}

TEST(Histogram, QuantileValidation) {
  Histogram h;
  EXPECT_THROW(h.quantile(0.5), CheckFailure);  // empty
  h.add(1.0);
  EXPECT_THROW(h.quantile(-0.1), CheckFailure);
  EXPECT_THROW(h.quantile(1.1), CheckFailure);
}

TEST(Histogram, AddAfterQuantileStaysSorted) {
  Histogram h;
  h.add(5.0);
  h.add(1.0);
  EXPECT_DOUBLE_EQ(h.median(), 3.0);
  h.add(9.0);  // forces re-sort
  EXPECT_DOUBLE_EQ(h.median(), 5.0);
}

TEST(Histogram, MergeCombinesSamples) {
  Histogram a, b;
  a.add(1.0);
  b.add(3.0);
  b.add(5.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.median(), 3.0);
}

TEST(Histogram, DigestMentionsCount) {
  Histogram h;
  EXPECT_EQ(h.digest(), "n=0");
  h.add(2.0);
  EXPECT_NE(h.digest().find("n=1"), std::string::npos);
}

}  // namespace
}  // namespace klex::support
