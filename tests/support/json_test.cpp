#include "support/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <sstream>

#include "support/check.hpp"

namespace klex::support {
namespace {

std::string compact(const std::function<void(JsonWriter&)>& build) {
  std::ostringstream out;
  JsonWriter json(out, 0);
  build(json);
  return out.str();
}

TEST(JsonWriter, EmptyObjectAndArray) {
  EXPECT_EQ(compact([](JsonWriter& j) { j.begin_object().end_object(); }),
            "{}");
  EXPECT_EQ(compact([](JsonWriter& j) { j.begin_array().end_array(); }),
            "[]");
}

TEST(JsonWriter, ObjectFields) {
  std::string text = compact([](JsonWriter& j) {
    j.begin_object()
        .field("name", "klex")
        .field("n", 8)
        .field("ok", true)
        .field("rate", 1.5)
        .end_object();
  });
  EXPECT_EQ(text, "{\"name\":\"klex\",\"n\":8,\"ok\":true,\"rate\":1.5}");
}

TEST(JsonWriter, NestedStructures) {
  std::string text = compact([](JsonWriter& j) {
    j.begin_object();
    j.key("runs").begin_array();
    j.begin_object().field("seed", std::uint64_t{7}).end_object();
    j.value(3);
    j.end_array();
    j.end_object();
  });
  EXPECT_EQ(text, "{\"runs\":[{\"seed\":7},3]}");
}

TEST(JsonWriter, EscapesStrings) {
  std::string text = compact([](JsonWriter& j) {
    j.begin_array().value("a\"b\\c\nd\te").end_array();
  });
  EXPECT_EQ(text, "[\"a\\\"b\\\\c\\nd\\te\"]");
  EXPECT_EQ(json_quote("ctrl\x01"), "\"ctrl\\u0001\"");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  std::string text = compact([](JsonWriter& j) {
    j.begin_array()
        .value(std::nan(""))
        .value(std::numeric_limits<double>::infinity())
        .end_array();
  });
  EXPECT_EQ(text, "[null,null]");
}

TEST(JsonWriter, DoublesRoundTrip) {
  double value = 0.1 + 0.2;  // 0.30000000000000004
  std::string text =
      compact([&](JsonWriter& j) { j.begin_array().value(value).end_array(); });
  double parsed = std::strtod(text.c_str() + 1, nullptr);
  EXPECT_EQ(parsed, value);
}

TEST(JsonWriter, MisuseTrips) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  EXPECT_THROW(json.value(1), CheckFailure);       // value without key
  EXPECT_THROW(json.end_array(), CheckFailure);    // wrong scope
  json.key("a");
  EXPECT_THROW(json.key("b"), CheckFailure);       // two keys in a row
}

TEST(JsonWriter, IndentedOutput) {
  std::ostringstream out;
  JsonWriter json(out, 2);
  json.begin_object().field("a", 1).end_object();
  EXPECT_EQ(out.str(), "{\n  \"a\": 1\n}");
  EXPECT_TRUE(json.done());
}

}  // namespace
}  // namespace klex::support
