#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace klex::support {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b()) << "diverged at step " << i;
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() != b()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.next_below(1), 0u);
  }
}

TEST(Rng, NextBelowZeroThrows) {
  Rng rng(9);
  EXPECT_THROW(rng.next_below(0), CheckFailure);
}

TEST(Rng, NextBelowCoversSmallRangeUniformly) {
  Rng rng(11);
  std::vector<int> counts(8, 0);
  const int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.next_below(8)];
  }
  for (int c : counts) {
    // Expected 10000 per bucket; allow 6% deviation.
    EXPECT_NEAR(c, kDraws / 8, kDraws / 8 * 0.06);
  }
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    std::int64_t v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextInSinglePoint) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.next_in(5, 5), 5);
  }
}

TEST(Rng, NextInInvalidThrows) {
  Rng rng(13);
  EXPECT_THROW(rng.next_in(2, 1), CheckFailure);
}

TEST(Rng, NextDoubleInHalfOpenUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextBoolExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
    EXPECT_FALSE(rng.next_bool(-1.0));
    EXPECT_TRUE(rng.next_bool(2.0));
  }
}

TEST(Rng, NextBoolFrequency) {
  Rng rng(23);
  int heads = 0;
  const int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.next_bool(0.25)) ++heads;
  }
  EXPECT_NEAR(heads, kDraws / 4, kDraws * 0.02);
}

TEST(Rng, ExponentialMeanRoughlyCorrect) {
  Rng rng(29);
  double total = 0.0;
  const int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    double v = rng.next_exponential(10.0);
    EXPECT_GE(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total / kDraws, 10.0, 0.3);
}

TEST(Rng, ExponentialRequiresPositiveMean) {
  Rng rng(29);
  EXPECT_THROW(rng.next_exponential(0.0), CheckFailure);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> original = values;
  rng.shuffle(values);
  std::multiset<int> a(values.begin(), values.end());
  std::multiset<int> b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

TEST(Rng, ShuffleEmptyAndSingleton) {
  Rng rng(31);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(37);
  Rng child1 = parent.split(1);
  Rng child2 = parent.split(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child1() == child2()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, PickIndexBounds) {
  Rng rng(41);
  for (int i = 0; i < 500; ++i) {
    EXPECT_LT(rng.pick_index(7), 7u);
  }
  EXPECT_THROW(rng.pick_index(0), CheckFailure);
}

TEST(Splitmix, DeterministicSequence) {
  std::uint64_t s1 = 99, s2 = 99;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  }
}

}  // namespace
}  // namespace klex::support
