#include "support/small_vec.hpp"

#include <gtest/gtest.h>

#include <string>

namespace klex::support {
namespace {

TEST(SmallVec, StartsEmptyInline) {
  SmallVec<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), 4u);
  EXPECT_TRUE(v.uses_inline_storage());
}

TEST(SmallVec, PushWithinInlineCapacity) {
  SmallVec<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 4u);
  EXPECT_TRUE(v.uses_inline_storage());
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(SmallVec, SpillsToHeapBeyondInline) {
  SmallVec<int, 2> v;
  for (int i = 0; i < 10; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 10u);
  EXPECT_FALSE(v.uses_inline_storage());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(SmallVec, InitializerList) {
  SmallVec<int, 3> v{5, 6, 7, 8};
  EXPECT_EQ(v.size(), 4u);
  EXPECT_EQ(v.front(), 5);
  EXPECT_EQ(v.back(), 8);
}

TEST(SmallVec, CopyPreservesContents) {
  SmallVec<std::string, 2> v{"a", "b", "c"};
  SmallVec<std::string, 2> copy(v);
  EXPECT_EQ(copy, v);
  copy.push_back("d");
  EXPECT_NE(copy, v);
  EXPECT_EQ(v.size(), 3u);
}

TEST(SmallVec, CopyAssignReplaces) {
  SmallVec<int, 2> a{1, 2, 3};
  SmallVec<int, 2> b{9};
  b = a;
  EXPECT_EQ(b, a);
}

TEST(SmallVec, MoveStealsHeapBuffer) {
  SmallVec<int, 2> v;
  for (int i = 0; i < 20; ++i) v.push_back(i);
  const int* data = v.data();
  SmallVec<int, 2> moved(std::move(v));
  EXPECT_EQ(moved.data(), data);  // buffer stolen, no copy
  EXPECT_EQ(moved.size(), 20u);
  EXPECT_TRUE(v.empty());  // NOLINT(bugprone-use-after-move)
}

TEST(SmallVec, MoveInlineCopiesElements) {
  SmallVec<std::string, 4> v{"x", "y"};
  SmallVec<std::string, 4> moved(std::move(v));
  EXPECT_EQ(moved.size(), 2u);
  EXPECT_EQ(moved[0], "x");
}

TEST(SmallVec, PopBackAndClear) {
  SmallVec<int, 4> v{1, 2, 3};
  v.pop_back();
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.back(), 2);
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_THROW(v.pop_back(), CheckFailure);
}

TEST(SmallVec, EraseAtPreservesOrder) {
  SmallVec<int, 4> v{10, 20, 30, 40};
  v.erase_at(1);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 10);
  EXPECT_EQ(v[1], 30);
  EXPECT_EQ(v[2], 40);
  EXPECT_THROW(v.erase_at(3), CheckFailure);
}

TEST(SmallVec, OutOfRangeIndexThrows) {
  SmallVec<int, 4> v{1};
  EXPECT_THROW(v[1], CheckFailure);
}

TEST(SmallVec, ReserveKeepsContents) {
  SmallVec<int, 2> v{1, 2};
  v.reserve(100);
  EXPECT_GE(v.capacity(), 100u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[1], 2);
}

TEST(SmallVec, IterationMatchesIndexing) {
  SmallVec<int, 4> v{3, 1, 4, 1, 5};
  int sum = 0;
  for (int x : v) sum += x;
  EXPECT_EQ(sum, 14);
}

TEST(SmallVec, EqualityIsElementwise) {
  SmallVec<int, 2> a{1, 2, 3};
  SmallVec<int, 8> b_same_inline{1, 2, 3};
  EXPECT_TRUE(a == (SmallVec<int, 2>{1, 2, 3}));
  EXPECT_FALSE(a == (SmallVec<int, 2>{1, 2}));
  (void)b_same_inline;
}

TEST(SmallVec, NonTrivialDestructorsRun) {
  // Counts constructions/destructions to detect leaks of heap-spilled
  // elements.
  static int live = 0;
  struct Probe {
    Probe() { ++live; }
    Probe(const Probe&) { ++live; }
    Probe(Probe&&) noexcept { ++live; }
    ~Probe() { --live; }
  };
  {
    SmallVec<Probe, 2> v;
    for (int i = 0; i < 9; ++i) v.emplace_back();
    EXPECT_EQ(live, 9);
  }
  EXPECT_EQ(live, 0);
}

}  // namespace
}  // namespace klex::support
