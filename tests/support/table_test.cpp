#include "support/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/csv.hpp"

namespace klex::support {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  std::string out = t.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 2u);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, RejectsEmptySchema) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, NumericCellFormatting) {
  EXPECT_EQ(Table::cell(42), "42");
  EXPECT_EQ(Table::cell(static_cast<std::int64_t>(-7)), "-7");
  EXPECT_EQ(Table::cell(3.14159, 2), "3.14");
  EXPECT_EQ(Table::cell(3.14159, 4), "3.1416");
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"x"});
  t.add_row({"a,b"});
  t.add_row({"say \"hi\""});
  std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, PrintIncludesTitle) {
  Table t({"c"});
  t.add_row({"v"});
  std::ostringstream out;
  t.print(out, "My Table");
  EXPECT_NE(out.str().find("My Table"), std::string::npos);
}

TEST(CsvWriter, WritesHeaderAndRows) {
  std::string path = ::testing::TempDir() + "/klex_csv_test.csv";
  {
    CsvWriter writer(path, {"a", "b"});
    writer.add_row({"1", "2"});
    writer.add_row({"x,y", "3"});
    writer.flush();
    EXPECT_EQ(writer.rows_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "a,b");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "1,2");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "\"x,y\",3");
  std::remove(path.c_str());
}

TEST(CsvWriter, RejectsWrongArity) {
  std::string path = ::testing::TempDir() + "/klex_csv_arity.csv";
  CsvWriter writer(path, {"a"});
  EXPECT_THROW(writer.add_row({"1", "2"}), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(CsvWriter, UnopenablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}),
               std::runtime_error);
}

}  // namespace
}  // namespace klex::support
