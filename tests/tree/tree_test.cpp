#include "tree/tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace klex::tree {
namespace {

TEST(Tree, LineShape) {
  Tree t = line(5);
  EXPECT_EQ(t.size(), 5);
  EXPECT_EQ(t.parent(0), kNoParent);
  for (NodeId v = 1; v < 5; ++v) EXPECT_EQ(t.parent(v), v - 1);
  EXPECT_EQ(t.degree(0), 1);
  EXPECT_EQ(t.degree(2), 2);
  EXPECT_EQ(t.degree(4), 1);
  EXPECT_EQ(t.height(), 4);
  EXPECT_EQ(t.leaf_count(), 1);
}

TEST(Tree, StarShape) {
  Tree t = star(6);
  EXPECT_EQ(t.degree(0), 5);
  for (NodeId v = 1; v < 6; ++v) {
    EXPECT_EQ(t.parent(v), 0);
    EXPECT_EQ(t.degree(v), 1);
    EXPECT_TRUE(t.is_leaf(v));
  }
  EXPECT_EQ(t.height(), 1);
  EXPECT_EQ(t.leaf_count(), 5);
}

TEST(Tree, BalancedBinaryCounts) {
  Tree t = balanced(2, 3);  // 1 + 2 + 4 + 8 = 15 nodes
  EXPECT_EQ(t.size(), 15);
  EXPECT_EQ(t.height(), 3);
  EXPECT_EQ(t.leaf_count(), 8);
  EXPECT_EQ(t.children(0).size(), 2u);
}

TEST(Tree, CaterpillarCounts) {
  Tree t = caterpillar(4, 2);  // 4 spine nodes + 8 legs
  EXPECT_EQ(t.size(), 12);
  // Every spine node (including the tail) has legs, so the leaves are
  // exactly the 8 legs.
  EXPECT_EQ(t.leaf_count(), 8);
  EXPECT_EQ(t.height(), 4);  // spine depth 3 + one leg
}

TEST(Tree, ParentChannelIsZeroForNonRoot) {
  // The paper's labeling convention: every non-root process labels the
  // channel to its parent 0 (Figure 1).
  Tree t = figure1_tree();
  for (NodeId v = 1; v < t.size(); ++v) {
    EXPECT_EQ(t.neighbor(v, 0), t.parent(v))
        << "node " << v << " channel 0 must lead to its parent";
  }
}

TEST(Tree, ReverseChannelRoundTrip) {
  Tree t = figure1_tree();
  for (NodeId v = 0; v < t.size(); ++v) {
    for (int c = 0; c < t.degree(v); ++c) {
      NodeId q = t.neighbor(v, c);
      int back = t.reverse_channel(v, c);
      EXPECT_EQ(t.neighbor(q, back), v);
      EXPECT_EQ(t.channel_to(q, v), back);
    }
  }
}

TEST(Tree, Figure1Shape) {
  Tree t = figure1_tree();
  EXPECT_EQ(t.size(), 8);
  EXPECT_EQ(t.children(0), (std::vector<NodeId>{1, 4}));
  EXPECT_EQ(t.children(1), (std::vector<NodeId>{2, 3}));
  EXPECT_EQ(t.children(4), (std::vector<NodeId>{5, 6, 7}));
  EXPECT_EQ(t.degree(0), 2);
  EXPECT_EQ(t.degree(1), 3);
  EXPECT_EQ(t.degree(4), 4);
}

TEST(Tree, Figure3Shape) {
  Tree t = figure3_tree();
  EXPECT_EQ(t.size(), 3);
  EXPECT_EQ(t.degree(0), 2);
  EXPECT_TRUE(t.is_leaf(1));
  EXPECT_TRUE(t.is_leaf(2));
}

TEST(Tree, DfsPreorderFollowsChannelOrder) {
  Tree t = figure1_tree();
  EXPECT_EQ(t.dfs_preorder(),
            (std::vector<NodeId>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(Tree, DepthsAreConsistent) {
  Tree t = balanced(3, 2);
  EXPECT_EQ(t.depth(0), 0);
  for (NodeId v = 1; v < t.size(); ++v) {
    EXPECT_EQ(t.depth(v), t.depth(t.parent(v)) + 1);
  }
}

TEST(Tree, RandomTreeIsValid) {
  support::Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    Tree t = random_tree(30, rng);
    EXPECT_EQ(t.size(), 30);
    // Every node reachable; depth consistency implies validity.
    for (NodeId v = 1; v < t.size(); ++v) {
      EXPECT_EQ(t.depth(v), t.depth(t.parent(v)) + 1);
    }
  }
}

TEST(Tree, RandomBoundedDegreeRespectsBound) {
  support::Rng rng(6);
  for (int bound : {2, 3, 5}) {
    Tree t = random_tree_bounded_degree(40, bound, rng);
    for (NodeId v = 0; v < t.size(); ++v) {
      EXPECT_LE(t.degree(v), bound);
    }
  }
}

TEST(Tree, FromParentsValidation) {
  EXPECT_THROW(Tree::from_parents({}), std::invalid_argument);
  EXPECT_THROW(Tree::from_parents({0}), std::invalid_argument);  // root has parent
  EXPECT_THROW(Tree::from_parents({kNoParent, 5}), std::invalid_argument);
  EXPECT_THROW(Tree::from_parents({kNoParent, 1}), std::invalid_argument);
  // Cycle 1<->2 disconnected from the root.
  EXPECT_THROW(Tree::from_parents({kNoParent, 2, 1}), std::invalid_argument);
}

TEST(Tree, SingleNodeIsAllowedAtTreeLevel) {
  Tree t = line(1);
  EXPECT_EQ(t.size(), 1);
  EXPECT_EQ(t.degree(0), 0);
  EXPECT_EQ(t.leaf_count(), 1);
}

TEST(Tree, DotExportMentionsEveryEdge) {
  Tree t = figure3_tree();
  std::string dot = t.to_dot();
  EXPECT_NE(dot.find("0 -> 1"), std::string::npos);
  EXPECT_NE(dot.find("0 -> 2"), std::string::npos);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
}

TEST(Tree, EqualityByShape) {
  EXPECT_TRUE(line(4) == line(4));
  EXPECT_FALSE(line(4) == star(4));
}

TEST(Tree, OutOfRangeAccessorsThrow) {
  Tree t = line(3);
  EXPECT_THROW(t.degree(3), std::invalid_argument);
  EXPECT_THROW(t.neighbor(0, 5), std::invalid_argument);
  EXPECT_THROW(t.channel_to(0, 2), std::invalid_argument);  // not adjacent
}

}  // namespace
}  // namespace klex::tree
