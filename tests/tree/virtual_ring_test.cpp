#include "tree/virtual_ring.hpp"

#include <gtest/gtest.h>

#include <map>

#include "tree/tree.hpp"

namespace klex::tree {
namespace {

TEST(VirtualRing, LengthIsTwiceEdges) {
  for (int n : {2, 3, 5, 9, 17}) {
    EXPECT_EQ(VirtualRing(line(n)).length(), 2 * (n - 1));
    EXPECT_EQ(VirtualRing(star(n)).length(), 2 * (n - 1));
  }
  EXPECT_EQ(VirtualRing(balanced(2, 3)).length(), 2 * 14);
}

TEST(VirtualRing, Figure4VisitSequence) {
  // The paper's Figure 4 tour: r a b a c a r d e d f d g d.
  VirtualRing ring(figure1_tree());
  std::vector<NodeId> expected{0, 1, 2, 1, 3, 1, 0, 4, 5, 4, 6, 4, 7, 4};
  EXPECT_EQ(ring.visit_sequence(), expected);
}

TEST(VirtualRing, AppearancesEqualDegree) {
  Tree t = figure1_tree();
  VirtualRing ring(t);
  for (NodeId v = 0; v < t.size(); ++v) {
    EXPECT_EQ(ring.appearances(v), t.degree(v)) << "node " << v;
  }
}

TEST(VirtualRing, EveryDirectedEdgeOnce) {
  Tree t = balanced(3, 2);
  VirtualRing ring(t);
  std::map<std::pair<NodeId, int>, int> seen;
  for (const RingHop& hop : ring.hops()) {
    ++seen[{hop.from, hop.out_channel}];
  }
  EXPECT_EQ(static_cast<int>(seen.size()), ring.length());
  for (const auto& [edge, count] : seen) {
    EXPECT_EQ(count, 1);
  }
}

TEST(VirtualRing, HopsAreChained) {
  Tree t = figure1_tree();
  VirtualRing ring(t);
  const auto& hops = ring.hops();
  for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
    // The next hop leaves the node the previous hop arrived at, on the
    // channel after the arrival channel.
    EXPECT_EQ(hops[i + 1].from, hops[i].to);
    EXPECT_EQ(hops[i + 1].out_channel,
              (hops[i].in_channel + 1) % t.degree(hops[i].to));
  }
  // And the tour closes at the root on channel 0.
  EXPECT_EQ(hops.front().from, kRoot);
  EXPECT_EQ(hops.front().out_channel, 0);
  EXPECT_EQ(hops.back().to, kRoot);
  EXPECT_EQ((hops.back().in_channel + 1) % t.degree(kRoot), 0);
}

TEST(VirtualRing, HopAfterMatchesRule) {
  Tree t = figure1_tree();
  VirtualRing ring(t);
  // Node 1 (a) has degree 3: arriving on channel 0 (from parent r) it
  // forwards on channel 1 (towards b = node 2).
  const RingHop& hop = ring.hop_after(1, 0);
  EXPECT_EQ(hop.from, 1);
  EXPECT_EQ(hop.out_channel, 1);
  EXPECT_EQ(hop.to, 2);
  // Arriving on its last channel (2, from c) it wraps to channel 0
  // (back to the parent).
  const RingHop& wrap = ring.hop_after(1, 2);
  EXPECT_EQ(wrap.out_channel, 0);
  EXPECT_EQ(wrap.to, 0);
}

TEST(VirtualRing, ForwardDistance) {
  VirtualRing ring(line(4));  // length 6
  EXPECT_EQ(ring.forward_distance(0, 0), 0);
  EXPECT_EQ(ring.forward_distance(0, 3), 3);
  EXPECT_EQ(ring.forward_distance(4, 1), 3);  // wraps around
  EXPECT_THROW(ring.forward_distance(-1, 0), std::invalid_argument);
  EXPECT_THROW(ring.forward_distance(0, 6), std::invalid_argument);
}

TEST(VirtualRing, PositionOfSend) {
  Tree t = figure1_tree();
  VirtualRing ring(t);
  EXPECT_EQ(ring.position_of_send(0, 0), 0);  // root's first hop
  for (const RingHop& hop : ring.hops()) {
    int pos = ring.position_of_send(hop.from, hop.out_channel);
    EXPECT_EQ(ring.hops()[static_cast<std::size_t>(pos)], hop);
  }
}

TEST(VirtualRing, TwoNodeTree) {
  VirtualRing ring(line(2));
  EXPECT_EQ(ring.length(), 2);
  EXPECT_EQ(ring.visit_sequence(), (std::vector<NodeId>{0, 1}));
}

TEST(VirtualRing, SingleNodeRejected) {
  EXPECT_THROW(VirtualRing(line(1)), std::invalid_argument);
}

TEST(VirtualRing, ToStringListsVisits) {
  VirtualRing ring(figure3_tree());
  EXPECT_EQ(ring.to_string(), "0 1 0 2");
}

}  // namespace
}  // namespace klex::tree
