// Event-granularity conservation: after stabilization, EVERY delivered
// message observes exactly ℓ resource tokens, one pusher, one priority
// token -- the strongest executable form of Lemmas 6-8.
#include <gtest/gtest.h>

#include "api/system.hpp"
#include "proto/messages.hpp"
#include "api/workload_driver.hpp"
#include "proto/workload.hpp"
#include "verify/conservation.hpp"

namespace klex {
namespace {

TEST(Conservation, EveryEventConservesTokensUnderLoad) {
  SystemConfig config;
  config.tree = tree::figure1_tree();
  config.k = 2;
  config.l = 3;
  config.seed = 777;
  System system(config);
  verify::ConservationChecker checker(config.l,
                                      [&system] { return system.census(); });
  system.add_observer(&checker);
  ASSERT_NE(system.run_until_stabilized(4'000'000), sim::kTimeInfinity);

  proto::NodeBehavior behavior;
  behavior.think = proto::Dist::exponential(48);
  behavior.cs_duration = proto::Dist::exponential(24);
  behavior.need = proto::Dist::uniform(1, 2);
  WorkloadDriver driver(system.engine(), system.clients(),
                               proto::uniform_behaviors(system.n(), behavior),
                               support::Rng(778));
  driver.begin();

  checker.arm();
  system.run_until(system.engine().now() + 500'000);
  EXPECT_GT(checker.events_checked(), 50'000u);
  EXPECT_TRUE(checker.clean())
      << "first deviation at t=" << checker.deviations().front().at << ": "
      << checker.deviations().front().resource << "/"
      << checker.deviations().front().pusher << "/"
      << checker.deviations().front().priority;
  EXPECT_GT(driver.total_grants(), 100);
}

TEST(Conservation, RootParticipationDoesNotBreakConservation) {
  // Regression for the census-accounting fix (DESIGN.md §1.1): the root
  // requesting units used to cause spurious mints/resets. With l = 1 the
  // population is a single token, so any miscount is immediately visible.
  SystemConfig config;
  config.tree = tree::line(3);
  config.k = 1;
  config.l = 1;
  config.seed = 779;
  System system(config);
  verify::ConservationChecker checker(config.l,
                                      [&system] { return system.census(); });
  system.add_observer(&checker);
  ASSERT_NE(system.run_until_stabilized(4'000'000), sim::kTimeInfinity);

  proto::NodeBehavior behavior;
  behavior.think = proto::Dist::fixed(4);  // root hammers requests
  behavior.cs_duration = proto::Dist::fixed(16);
  behavior.need = proto::Dist::fixed(1);
  WorkloadDriver driver(system.engine(), system.clients(),
                               proto::uniform_behaviors(system.n(), behavior),
                               support::Rng(780));
  driver.begin();

  checker.arm();
  system.run_until(system.engine().now() + 1'000'000);
  EXPECT_TRUE(checker.clean());
  EXPECT_GT(driver.grants(0), 100) << "the root itself must be served";
}

TEST(Conservation, DetectsInjectedSurplus) {
  // Sanity check of the checker itself: an injected token must show up.
  SystemConfig config;
  config.tree = tree::line(4);
  config.k = 1;
  config.l = 2;
  config.seed = 781;
  System system(config);
  verify::ConservationChecker checker(config.l,
                                      [&system] { return system.census(); });
  system.add_observer(&checker);
  ASSERT_NE(system.run_until_stabilized(4'000'000), sim::kTimeInfinity);
  checker.arm();
  system.engine().inject_message(2, 0, proto::make_resource());
  system.run_until(system.engine().now() + 5'000);
  EXPECT_FALSE(checker.clean());
  EXPECT_EQ(checker.deviations().front().resource, 3);
}

TEST(Conservation, DisarmStopsChecking) {
  SystemConfig config;
  config.tree = tree::line(3);
  config.k = 1;
  config.l = 1;
  config.seed = 782;
  System system(config);
  verify::ConservationChecker checker(config.l,
                                      [&system] { return system.census(); });
  system.add_observer(&checker);
  ASSERT_NE(system.run_until_stabilized(4'000'000), sim::kTimeInfinity);
  checker.arm();
  checker.disarm();
  system.engine().inject_message(1, 0, proto::make_resource());
  system.run_until(system.engine().now() + 5'000);
  EXPECT_TRUE(checker.clean());  // not watching
  EXPECT_EQ(checker.events_checked(), 0u);
}

TEST(Conservation, NaiveRungConservesSeededTokensExactly) {
  // Without the controller nothing can mint or erase: conservation is
  // unconditional from the start.
  SystemConfig config;
  config.tree = tree::balanced(2, 2);
  config.k = 2;
  config.l = 4;
  config.features = proto::Features::with_priority();
  config.seed = 783;
  System system(config);
  verify::ConservationChecker checker(config.l,
                                      [&system] { return system.census(); });
  system.add_observer(&checker);
  system.run_until(5'000);  // seeding happens at t=0
  checker.arm();

  proto::NodeBehavior behavior;
  behavior.think = proto::Dist::exponential(32);
  behavior.cs_duration = proto::Dist::exponential(16);
  behavior.need = proto::Dist::uniform(1, 2);
  WorkloadDriver driver(system.engine(), system.clients(),
                               proto::uniform_behaviors(system.n(), behavior),
                               support::Rng(784));
  driver.begin();
  system.run_until(system.engine().now() + 500'000);
  EXPECT_TRUE(checker.clean());
}

}  // namespace
}  // namespace klex
