#include <gtest/gtest.h>

#include <memory>

#include "proto/census.hpp"
#include "sim/engine.hpp"
#include "verify/convergence.hpp"
#include "verify/fairness_monitor.hpp"
#include "verify/safety_monitor.hpp"

namespace klex::verify {
namespace {

TEST(SafetyMonitor, CleanRunHasNoViolations) {
  SafetyMonitor monitor(3, 2, 4);
  monitor.on_enter_cs(0, 2, 10);
  monitor.on_enter_cs(1, 2, 11);
  EXPECT_EQ(monitor.units_in_use(), 4);
  EXPECT_EQ(monitor.in_cs_count(), 2);
  monitor.on_exit_cs(0, 20);
  monitor.on_exit_cs(1, 21);
  EXPECT_EQ(monitor.units_in_use(), 0);
  EXPECT_FALSE(monitor.any_violation());
  EXPECT_EQ(monitor.total_entries(), 2);
}

TEST(SafetyMonitor, DetectsOverL) {
  SafetyMonitor monitor(3, 2, 3);
  monitor.on_enter_cs(0, 2, 5);
  monitor.on_enter_cs(1, 2, 6);  // 4 > 3
  ASSERT_TRUE(monitor.any_violation());
  EXPECT_EQ(monitor.last_violation_time(), 6u);
  EXPECT_NE(monitor.violations()[0].what.find("> l"), std::string::npos);
}

TEST(SafetyMonitor, DetectsOverK) {
  SafetyMonitor monitor(2, 2, 5);
  monitor.on_enter_cs(0, 3, 7);  // 3 > k = 2
  ASSERT_TRUE(monitor.any_violation());
  EXPECT_NE(monitor.violations()[0].what.find("> k"), std::string::npos);
}

TEST(SafetyMonitor, DetectsDoubleEntry) {
  SafetyMonitor monitor(2, 2, 5);
  monitor.on_enter_cs(0, 1, 3);
  monitor.on_enter_cs(0, 1, 4);
  ASSERT_TRUE(monitor.any_violation());
  EXPECT_EQ(monitor.units_in_use(), 1);  // no double counting
}

TEST(SafetyMonitor, RecoversAccountingAfterViolation) {
  SafetyMonitor monitor(2, 2, 2);
  monitor.on_enter_cs(0, 2, 1);
  monitor.on_enter_cs(1, 2, 2);  // violation
  monitor.on_exit_cs(0, 3);
  monitor.on_exit_cs(1, 4);
  EXPECT_EQ(monitor.units_in_use(), 0);
}

TEST(SafetyMonitorWatchdog, FlagsOldRequestsOncePerRequest) {
  SafetyMonitor monitor(3, 1, 2);
  monitor.set_stall_threshold(100);
  monitor.on_request(0, 1, 10);
  monitor.on_request(1, 1, 50);

  EXPECT_EQ(monitor.check_stalls(60), 0);  // nothing old enough yet
  EXPECT_EQ(monitor.check_stalls(111), 1);
  ASSERT_EQ(monitor.stall_count(), 1);
  EXPECT_EQ(monitor.stalls()[0].node, 0);
  EXPECT_EQ(monitor.stalls()[0].requested_at, 10u);
  EXPECT_EQ(monitor.stalls()[0].flagged_at, 111u);

  // A flagged request is flagged once; the younger request stalls later.
  EXPECT_EQ(monitor.check_stalls(120), 0);
  EXPECT_EQ(monitor.check_stalls(200), 1);
  EXPECT_EQ(monitor.stall_count(), 2);
  EXPECT_EQ(monitor.stalls()[1].node, 1);

  // A grant retires the pending request; a fresh request re-arms and is
  // measured from its own submission time.
  monitor.on_enter_cs(0, 1, 210);
  monitor.on_exit_cs(0, 215);
  monitor.on_request(0, 1, 220);
  EXPECT_EQ(monitor.check_stalls(300), 0);  // 80 < threshold
  EXPECT_EQ(monitor.check_stalls(330), 1);
  EXPECT_EQ(monitor.stall_count(), 3);
  EXPECT_EQ(monitor.stalls()[2].requested_at, 220u);
}

TEST(SafetyMonitorWatchdog, DisabledThresholdNeverFlags) {
  SafetyMonitor monitor(2, 1, 2);
  monitor.on_request(0, 1, 0);
  EXPECT_EQ(monitor.check_stalls(1'000'000), 0);
  EXPECT_EQ(monitor.stall_count(), 0);
}

// Minimal traffic source for the live-observer heartbeat test: the
// watchdog is driven by deliveries, so a channel that keeps delivering
// is what advances it.
class PingSink : public sim::Process {
 public:
  void on_message(int, const sim::Message&) override {}
  void on_timer(int) override {}
  using sim::Process::send;
};

TEST(SafetyMonitorWatchdog, LiveObserverHeartbeatTimestampsTheStall) {
  // watch(engine) is the continuous-monitoring mode the chaos runner
  // uses: deliveries heartbeat check_stalls, so a starved request gets
  // flagged at a simulated-time heartbeat without any manual polling.
  sim::Engine engine(sim::DelayModel{1, 4}, 11);
  auto a = std::make_unique<PingSink>();
  auto b = std::make_unique<PingSink>();
  PingSink* src = a.get();
  engine.add_process(std::move(a));
  engine.add_process(std::move(b));
  engine.connect(0, 0, 1, 0);
  engine.start();

  SafetyMonitor monitor(2, 1, 2);
  monitor.set_stall_threshold(100);
  monitor.watch(engine);
  monitor.on_request(0, 1, 0);  // as the protocol Listener would report

  sim::Message ping;
  ping.type = 1;
  for (int i = 0; i < 20; ++i) {
    src->send(0, ping);
    engine.run_until(engine.now() + 40);
  }
  ASSERT_EQ(monitor.stall_count(), 1);
  EXPECT_EQ(monitor.stalls()[0].node, 0);
  EXPECT_EQ(monitor.stalls()[0].requested_at, 0u);
  // Flagged by the first heartbeat past the threshold -- a simulated
  // timestamp in the delivery stream, well before the run's end.
  EXPECT_GE(monitor.stalls()[0].flagged_at, 100u);
  EXPECT_LE(monitor.stalls()[0].flagged_at, 200u);
}

TEST(ConvergenceTracker, TracksLastIncorrect) {
  ConvergenceTracker tracker(2);
  proto::TokenCensus bad;  // zero tokens
  proto::TokenCensus good;
  good.free_resource = 2;
  good.pusher = 1;
  good.free_priority = 1;

  tracker.poll(bad, 10);
  EXPECT_FALSE(tracker.converged());
  tracker.poll(good, 20);
  EXPECT_TRUE(tracker.converged());
  EXPECT_EQ(tracker.convergence_time(), 20u);
  tracker.poll(good, 30);
  EXPECT_EQ(tracker.convergence_time(), 20u);  // stays at first correct
  tracker.poll(bad, 40);                        // regression!
  EXPECT_FALSE(tracker.converged());
  EXPECT_EQ(tracker.last_incorrect_time(), 40u);
  tracker.poll(good, 50);
  EXPECT_EQ(tracker.convergence_time(), 50u);
  EXPECT_EQ(tracker.polls(), 5u);
  EXPECT_EQ(tracker.incorrect_polls(), 2u);
}

TEST(FairnessMonitor, TracksLatencies) {
  FairnessMonitor monitor(2);
  monitor.on_request(0, 1, 100);
  monitor.on_request(1, 1, 110);
  EXPECT_EQ(monitor.outstanding_count(), 2);
  EXPECT_EQ(monitor.most_starved_node(), 0);
  EXPECT_EQ(monitor.oldest_outstanding_age(150), 50u);

  monitor.on_enter_cs(0, 1, 160);
  EXPECT_EQ(monitor.outstanding_count(), 1);
  EXPECT_EQ(monitor.grants(), 1);
  EXPECT_DOUBLE_EQ(monitor.grant_latency().max(), 60.0);
  EXPECT_EQ(monitor.most_starved_node(), 1);
}

TEST(FairnessMonitor, SpuriousEntryIgnored) {
  FairnessMonitor monitor(2);
  monitor.on_enter_cs(1, 1, 50);  // no request recorded
  EXPECT_EQ(monitor.grants(), 0);
  EXPECT_EQ(monitor.grant_latency().count(), 0u);
}

TEST(FairnessMonitor, NoOutstandingMeansZeroAge) {
  FairnessMonitor monitor(2);
  EXPECT_EQ(monitor.oldest_outstanding_age(1000), 0u);
  EXPECT_EQ(monitor.most_starved_node(), -1);
}

}  // namespace
}  // namespace klex::verify
