#!/usr/bin/env python3
"""Compare BENCH_*.json artifacts between two commits / build trees.

Usage:
    tools/bench_diff.py BASELINE_DIR CURRENT_DIR [options]

Both directories hold BENCH_<scenario>.json files written by
exp::write_json_file (bench/baselines/ keeps the committed baselines; a
build directory holds the freshly produced ones). For every scenario
present on both sides the tool compares:

  * throughput: per-aggregate-cell total_events_per_sec (keyed by
    topology, features, k, l, fault_garbage, threads, fleet, fleet_mode,
    policy -- "features" names the protocol rung and defaults to "full"
    for artifacts that predate the rung grid; fault_garbage defaults to
    -1; threads is the engine's worker-lane count and defaults to 1 for
    pre-parallel artifacts; fleet is the tenant count (default 1) and
    fleet_mode distinguishes a shared-engine fleet cell from its
    separate-engines baseline for pre-fleet artifacts and plain cells it
    is empty; policy is the resilience-policy variant label of the
    degraded-mode sweeps and is empty for scenarios without a policy
    axis). A record missing one of the schema-mandatory keys
    (topology, k, l, seed) aborts the comparison loudly instead of
    keying onto a default. A
    baseline n x threads cell missing from the current artifact fails
    like any other dropped cell, so a partition count cannot silently
    vanish from the sweep. A drop of more than
    --rate-tolerance is a REGRESSION. Wall-clock rates vary between
    machines, so CI calls this with a generous tolerance while
    same-machine commit-to-commit runs use the strict default. Cells
    carrying mean_wall_seconds and n also report wall-time per node.
  * deterministic counters: per-run engine.callback_slots_created,
    engine.in_flight_walks, engine.overflow_pushes and the run-level
    recovery_events (keyed by topology, features, k, l, fault_garbage,
    seed). These are bit-deterministic per seed, so any growth beyond
    --counter-tolerance plus --counter-slack means per-event allocations,
    O(channels) census walks or heap-fallback scheduling crept back into
    a hot path: REGRESSION. A counter present in the baseline but absent
    from the current artifact is a FAILURE (dropping a gated counter must
    not read as "no regression"); one absent from the baseline is skipped
    with a note (new counters gate once a baseline carrying them is
    committed). Any non-finite gated value (NaN/Inf rate or counter) is a
    data error: it would compare as "no regression" on every side and
    silently disarm the gate.
  * grant-latency percentiles: per-run grant_latency_p50 / p99 / p999
    and the per-cell mean_grant_latency_* aggregates (emitted by
    scenarios whose workload recorded grant-latency samples -- the
    degraded-mode sweeps' SLO surface). Single-threaded runs of a fixed
    seed are bit-deterministic, chaos draws included, so these gate like
    counters: growth beyond tolerance is a latency REGRESSION, and a
    percentile present in the baseline but missing from the current
    artifact is a FAILURE (dropping the tail metric must not read as
    "the tail is fine").

Coverage is part of the contract: an aggregate cell (or a per-seed run)
present in the baseline but missing from the current artifact is a
FAILURE (a renamed or silently dropped cell must not read as "no
regressions"). --allow-missing-cells SCENARIO[=MAXN] waives exactly the
cells a capped smoke sweep cannot produce: with =MAXN only cells whose
network size exceeds MAXN are waived (CI passes the KLEX_SCALE_MAX_N cap
here); without =MAXN the whole scenario's missing cells are waived.
Scenarios present on one side only are reported; a baseline scenario
absent from the current side fails unless --scenario restricts the
comparison or --allow-missing-cells covers it. A baseline run that
recovered from its fault must still recover (a missing or false
"recovered" in the current run is a REGRESSION). Exit status: 0 = clean,
1 = at least one regression or coverage failure, 2 = usage or data
error.
"""

import argparse
import json
import math
import re
import sys
from pathlib import Path

RATE_FIELD = "total_events_per_sec"
ENGINE_COUNTER_FIELDS = (
    "callback_slots_created",
    "in_flight_walks",
    "overflow_pushes",
    # Adversarial-channel decision counters: bit-deterministic per seed
    # (per-link chaos rng), emitted only by chaos-enabled scenarios --
    # absent baselines skip them via the absent-in-baseline rule.
    "chaos_dropped",
    "chaos_duplicated",
    "chaos_reordered",
    "chaos_jittered",
)
RUN_COUNTER_FIELDS = ("recovery_events",)
# Grant-latency tail percentiles (simulated ticks): bit-deterministic
# per seed like the counters, but a *latency* gate -- growth is the
# regression. Emitted only by scenarios whose runs recorded samples;
# absent baselines skip them via the absent-in-baseline rule.
RUN_LATENCY_FIELDS = (
    "grant_latency_p50",
    "grant_latency_p99",
    "grant_latency_p999",
)
AGGREGATE_LATENCY_FIELDS = (
    "mean_grant_latency_p50",
    "mean_grant_latency_p99",
    "mean_grant_latency_p999",
)


def load_benches(directory):
    benches = {}
    for path in sorted(Path(directory).glob("BENCH_*.json")):
        try:
            with open(path) as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError) as err:
            print(f"error: cannot read {path}: {err}", file=sys.stderr)
            sys.exit(2)
        benches[data.get("scenario", path.stem)] = data
    return benches


def cell_key(cell):
    """Identity of one aggregate cell / run. topology, k and l are part of
    every artifact schema ever written; their absence means the file is not
    a BENCH artifact (or the schema changed under us), which must fail
    loudly rather than key every record onto a default.
    """
    try:
        return (
            cell["topology"],
            cell.get("features", "full"),
            cell["k"],
            cell["l"],
            cell.get("fault_garbage", -1),
            cell.get("threads", 1),
            cell.get("fleet", 1),
            cell.get("fleet_mode", ""),
            cell.get("policy", ""),
        )
    except KeyError as err:
        print(
            f"error: record is missing required key {err} -- not a BENCH "
            f"artifact (or its key schema changed); refusing to compare: "
            f"{json.dumps(cell)[:200]}",
            file=sys.stderr,
        )
        sys.exit(2)


def aggregate_cells(data):
    return {cell_key(cell): cell for cell in data.get("aggregates", [])}


def run_cells(data):
    runs = {}
    for run in data.get("runs", []):
        if "seed" not in run:
            print(
                f"error: run record has no seed -- not a BENCH artifact "
                f"(or its key schema changed); refusing to compare: "
                f"{json.dumps(run)[:200]}",
                file=sys.stderr,
            )
            sys.exit(2)
        runs[cell_key(run) + (run["seed"],)] = run
    return runs


def fmt_key(key):
    base = f"{key[0]} [{key[1]}] k={key[2]} l={key[3]}"
    if key[4] != -1:
        base += f" g={key[4]}"
    if key[5] != 1:
        base += f" p={key[5]}"
    if key[6] != 1:
        base += f" R={key[6]}({key[7] or 'shared'})"
    if key[8]:
        base += f" policy={key[8]}"
    if len(key) == 10:
        base += f" seed={key[9]}"
    return base


def cell_n(topology, record=None):
    """Network size of a cell: the explicit n field, else parsed from the
    topology name (older artifacts embed it, e.g. "tree:random(n=8192,...)").
    """
    if record and record.get("n"):
        return record["n"]
    match = re.search(r"n=(\d+)", topology)
    return int(match.group(1)) if match else None


def checked_number(label, where, value):
    """Validates a gated metric value. None passes through (the caller
    decides what absence means); anything non-numeric or NaN is a data
    error -- a NaN rate or counter would compare as 'not a regression'
    on every side and silently disarm the gate.
    """
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)) or (
        isinstance(value, float) and not math.isfinite(value)
    ):
        print(
            f"error: {where}: {label} is {value!r} -- not a finite number; "
            f"the artifact is corrupt (NaN/Inf compares as 'no regression' "
            f"and would disarm the gate)",
            file=sys.stderr,
        )
        sys.exit(2)
    return value


def fmt_wall_per_node(cell):
    """Wall-time per node in us, or None for artifacts predating the fields."""
    wall = cell.get("mean_wall_seconds")
    n = cell.get("n")
    if not wall or not n:
        return None
    return wall * 1e6 / n


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("baseline", help="directory with baseline BENCH_*.json")
    parser.add_argument("current", help="directory with current BENCH_*.json")
    parser.add_argument(
        "--rate-tolerance",
        type=float,
        default=0.10,
        help="max fractional events/sec drop before failing (default 0.10)",
    )
    parser.add_argument(
        "--rate-advisory",
        action="store_true",
        help="report events/sec drops but do not fail on them (for "
        "cross-machine comparisons where only the deterministic "
        "counters are trustworthy)",
    )
    parser.add_argument(
        "--counter-tolerance",
        type=float,
        default=0.10,
        help="max fractional growth of deterministic counters (default 0.10)",
    )
    parser.add_argument(
        "--counter-slack",
        type=int,
        default=2,
        help="absolute growth allowed on tiny counters (default 2)",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        default=None,
        help="restrict to these scenario names (repeatable)",
    )
    parser.add_argument(
        "--allow-missing-cells",
        action="append",
        default=[],
        metavar="SCENARIO[=MAXN]",
        help="scenario whose current artifact may omit baseline cells; with "
        "=MAXN only cells with network size > MAXN are waived (the smoke "
        "run's n-cap), without it all of the scenario's missing cells are. "
        "Repeatable",
    )
    args = parser.parse_args()

    baseline = load_benches(args.baseline)
    current = load_benches(args.current)
    if not baseline:
        print(f"error: no BENCH_*.json under {args.baseline}", file=sys.stderr)
        sys.exit(2)
    if not current:
        print(f"error: no BENCH_*.json under {args.current}", file=sys.stderr)
        sys.exit(2)

    # scenario -> n-cap above which missing cells are waived (None = all).
    allow_missing = {}
    for entry in args.allow_missing_cells:
        name, _, cap = entry.partition("=")
        allow_missing[name] = int(cap) if cap else None

    def missing_waived(name, topology, record):
        if name not in allow_missing:
            return False
        cap = allow_missing[name]
        if cap is None:
            return True
        n = cell_n(topology, record)
        # Unknown size: waive (conservative; named-size sweeps always parse).
        return n is None or n > cap
    names = sorted(set(baseline) & set(current))
    if args.scenario:
        names = [n for n in names if n in set(args.scenario)]

    failures = 0
    for name in sorted(set(baseline) - set(current)):
        if args.scenario and name not in set(args.scenario):
            continue
        if name in allow_missing:
            print(f"note: scenario '{name}' only in baseline; allowed")
        else:
            failures += 1
            print(
                f"FAILURE: scenario '{name}' in baseline but missing from "
                f"current (restrict with --scenario or allow with "
                f"--allow-missing-cells)"
            )
    for name in sorted(set(current) - set(baseline)):
        print(f"note: scenario '{name}' only in current; skipped")
    if not names:
        print("error: no scenario present on both sides", file=sys.stderr)
        sys.exit(2)

    for name in names:
        base_cells = aggregate_cells(baseline[name])
        cur_cells = aggregate_cells(current[name])
        shared = sorted(set(base_cells) & set(cur_cells))
        for key in sorted(set(base_cells) - set(cur_cells)):
            if missing_waived(name, key[0], base_cells[key]):
                print(f"note: [{name}] {fmt_key(key)} missing from current; "
                      f"allowed (capped sweep)")
            else:
                failures += 1
                print(f"FAILURE: [{name}] {fmt_key(key)} in baseline but "
                      f"missing from current artifact")
        print(f"== scenario '{name}': {len(shared)} aggregate cell(s) ==")
        for key in shared:
            base_rate = checked_number(
                RATE_FIELD, f"[{name}] baseline {fmt_key(key)}",
                base_cells[key].get(RATE_FIELD)) or 0.0
            cur_rate = checked_number(
                RATE_FIELD, f"[{name}] current {fmt_key(key)}",
                cur_cells[key].get(RATE_FIELD)) or 0.0
            if base_rate > 0:
                change = cur_rate / base_rate - 1.0
                status = "ok"
                if change < -args.rate_tolerance:
                    if args.rate_advisory:
                        status = "slow(adv)"
                    else:
                        status = "REGRESSION"
                        failures += 1
                wall = ""
                base_wpn = fmt_wall_per_node(base_cells[key])
                cur_wpn = fmt_wall_per_node(cur_cells[key])
                if cur_wpn is not None:
                    wall = f", wall/node {cur_wpn:.3f}us"
                    if base_wpn is not None:
                        wall = (f", wall/node {base_wpn:.3f} -> "
                                f"{cur_wpn:.3f}us")
                print(
                    f"  {status:>10}  {fmt_key(key)}: events/s "
                    f"{base_rate:,.0f} -> {cur_rate:,.0f} ({change:+.1%})"
                    f"{wall}"
                )
            # Aggregate grant-latency tail: deterministic means over the
            # cell's seeds, gated like the counters (growth = worse tail).
            for field in AGGREGATE_LATENCY_FIELDS:
                base_v = checked_number(
                    field, f"[{name}] baseline {fmt_key(key)}",
                    base_cells[key].get(field))
                cur_v = checked_number(
                    field, f"[{name}] current {fmt_key(key)}",
                    cur_cells[key].get(field))
                if base_v is None:
                    if cur_v is not None:
                        print(f"  note        {fmt_key(key)}: {field} absent "
                              f"from baseline; skipped (new metric)")
                    continue
                if cur_v is None:
                    failures += 1
                    print(f"  FAILURE     {fmt_key(key)}: {field} present in "
                          f"baseline ({base_v:.0f}) but absent from current "
                          f"artifact")
                    continue
                limit = (base_v * (1.0 + args.counter_tolerance)
                         + args.counter_slack)
                if cur_v > limit:
                    failures += 1
                    print(
                        f"  REGRESSION  {fmt_key(key)}: {field} "
                        f"{base_v:.0f} -> {cur_v:.0f} (limit {limit:.0f})"
                    )

        base_runs = run_cells(baseline[name])
        cur_runs = run_cells(current[name])
        for key in sorted(set(base_runs) - set(cur_runs)):
            # Run-level coverage: a baseline seed silently vanishing from a
            # still-present cell must not pass as "nothing to compare".
            if missing_waived(name, key[0], base_runs[key]):
                continue  # the cell-level note already covers capped sweeps
            failures += 1
            print(f"FAILURE: [{name}] {fmt_key(key)} run in baseline but "
                  f"missing from current artifact")
        for key in sorted(set(base_runs) & set(cur_runs)):
            base_run = base_runs[key]
            cur_run = cur_runs[key]
            if base_run.get("recovered") and cur_run.get("recovered") \
                    is not True:
                # recovery_events is only emitted for recovered runs, so an
                # un-recovering (or fault-phase-dropping) current run would
                # otherwise dodge the counter gate entirely -- the worst
                # recovery regression.
                failures += 1
                print(f"  REGRESSION  {fmt_key(key)}: recovered "
                      f"true -> {cur_run.get('recovered')}")
            counters = [
                (f"engine.{field}",
                 base_run.get("engine", {}).get(field),
                 cur_run.get("engine", {}).get(field))
                for field in ENGINE_COUNTER_FIELDS
            ] + [
                (field, base_run.get(field), cur_run.get(field))
                for field in RUN_COUNTER_FIELDS
            ] + [
                # Per-run latency percentiles: same gate semantics --
                # growth beyond tolerance is a (tail-latency) regression,
                # and present-in-baseline-but-absent is a FAILURE.
                (field, base_run.get(field), cur_run.get(field))
                for field in RUN_LATENCY_FIELDS
            ]
            for label, base_v, cur_v in counters:
                base_v = checked_number(
                    label, f"[{name}] baseline {fmt_key(key)}", base_v)
                cur_v = checked_number(
                    label, f"[{name}] current {fmt_key(key)}", cur_v)
                if base_v is None:
                    # The baseline predates this counter: nothing to gate
                    # against, but say so once rather than pass silently.
                    if cur_v is not None:
                        print(f"  note        {fmt_key(key)}: {label} absent "
                              f"from baseline; skipped (new counter)")
                    continue
                if cur_v is None:
                    # Present in the baseline but gone from the current
                    # artifact: the counter was dropped or renamed, which
                    # must not read as "no regression".
                    failures += 1
                    print(f"  FAILURE     {fmt_key(key)}: {label} present in "
                          f"baseline ({base_v}) but absent from current "
                          f"artifact")
                    continue
                limit = base_v * (1.0 + args.counter_tolerance) + args.counter_slack
                if cur_v > limit:
                    failures += 1
                    print(
                        f"  REGRESSION  {fmt_key(key)}: {label} "
                        f"{base_v} -> {cur_v} (limit {limit:.0f})"
                    )

    if failures:
        print(f"\n{failures} regression(s)/failure(s) beyond tolerance")
        return 1
    print("\nno regressions beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
