#!/usr/bin/env python3
"""Compare BENCH_*.json artifacts between two commits / build trees.

Usage:
    tools/bench_diff.py BASELINE_DIR CURRENT_DIR [options]

Both directories hold BENCH_<scenario>.json files written by
exp::write_json_file (bench/baselines/ keeps the committed baselines; a
build directory holds the freshly produced ones). For every scenario
present on both sides the tool compares:

  * throughput: per-aggregate-cell total_events_per_sec (keyed by
    topology, features, k, l -- "features" names the protocol rung and
    defaults to "full" for artifacts that predate the rung grid). A drop
    of more than --rate-tolerance is a REGRESSION. Wall-clock rates vary
    between machines, so CI calls this with a generous tolerance while
    same-machine commit-to-commit runs use the strict default.
  * allocation / walk counters: per-run engine.callback_slots_created and
    engine.in_flight_walks (keyed by topology, features, k, l, seed).
    These are bit-deterministic per seed, so any growth beyond
    --counter-tolerance plus --counter-slack means per-event allocations
    or O(channels) census walks crept back into a hot path: REGRESSION.

Cells or scenarios present on one side only are reported but never fail
the run (short/smoke sweeps are strict subsets of the committed full
sweeps). Exit status: 0 = clean, 1 = at least one regression, 2 = usage
or data error.
"""

import argparse
import json
import sys
from pathlib import Path

RATE_FIELD = "total_events_per_sec"
COUNTER_FIELDS = ("callback_slots_created", "in_flight_walks")


def load_benches(directory):
    benches = {}
    for path in sorted(Path(directory).glob("BENCH_*.json")):
        try:
            with open(path) as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError) as err:
            print(f"error: cannot read {path}: {err}", file=sys.stderr)
            sys.exit(2)
        benches[data.get("scenario", path.stem)] = data
    return benches


def aggregate_cells(data):
    return {
        (cell["topology"], cell.get("features", "full"), cell["k"],
         cell["l"]): cell
        for cell in data.get("aggregates", [])
    }


def run_cells(data):
    return {
        (run["topology"], run.get("features", "full"), run["k"], run["l"],
         run["seed"]): run
        for run in data.get("runs", [])
    }


def fmt_key(key):
    if len(key) == 5:
        return f"{key[0]} [{key[1]}] k={key[2]} l={key[3]} seed={key[4]}"
    return f"{key[0]} [{key[1]}] k={key[2]} l={key[3]}"


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("baseline", help="directory with baseline BENCH_*.json")
    parser.add_argument("current", help="directory with current BENCH_*.json")
    parser.add_argument(
        "--rate-tolerance",
        type=float,
        default=0.10,
        help="max fractional events/sec drop before failing (default 0.10)",
    )
    parser.add_argument(
        "--rate-advisory",
        action="store_true",
        help="report events/sec drops but do not fail on them (for "
        "cross-machine comparisons where only the deterministic "
        "counters are trustworthy)",
    )
    parser.add_argument(
        "--counter-tolerance",
        type=float,
        default=0.10,
        help="max fractional growth of deterministic counters (default 0.10)",
    )
    parser.add_argument(
        "--counter-slack",
        type=int,
        default=2,
        help="absolute growth allowed on tiny counters (default 2)",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        default=None,
        help="restrict to these scenario names (repeatable)",
    )
    args = parser.parse_args()

    baseline = load_benches(args.baseline)
    current = load_benches(args.current)
    if not baseline:
        print(f"error: no BENCH_*.json under {args.baseline}", file=sys.stderr)
        sys.exit(2)
    if not current:
        print(f"error: no BENCH_*.json under {args.current}", file=sys.stderr)
        sys.exit(2)

    names = sorted(set(baseline) & set(current))
    if args.scenario:
        names = [n for n in names if n in set(args.scenario)]
    for name in sorted(set(baseline) ^ set(current)):
        side = "baseline" if name in baseline else "current"
        print(f"note: scenario '{name}' only in {side}; skipped")
    if not names:
        print("error: no scenario present on both sides", file=sys.stderr)
        sys.exit(2)

    regressions = 0
    for name in names:
        base_cells = aggregate_cells(baseline[name])
        cur_cells = aggregate_cells(current[name])
        shared = sorted(set(base_cells) & set(cur_cells))
        for key in sorted(set(base_cells) - set(cur_cells)):
            print(f"note: [{name}] {fmt_key(key)} missing from current; skipped")
        print(f"== scenario '{name}': {len(shared)} aggregate cell(s) ==")
        for key in shared:
            base_rate = base_cells[key].get(RATE_FIELD, 0.0)
            cur_rate = cur_cells[key].get(RATE_FIELD, 0.0)
            if base_rate > 0:
                change = cur_rate / base_rate - 1.0
                status = "ok"
                if change < -args.rate_tolerance:
                    if args.rate_advisory:
                        status = "slow(adv)"
                    else:
                        status = "REGRESSION"
                        regressions += 1
                print(
                    f"  {status:>10}  {fmt_key(key)}: events/s "
                    f"{base_rate:,.0f} -> {cur_rate:,.0f} ({change:+.1%})"
                )

        base_runs = run_cells(baseline[name])
        cur_runs = run_cells(current[name])
        for key in sorted(set(base_runs) & set(cur_runs)):
            base_engine = base_runs[key].get("engine", {})
            cur_engine = cur_runs[key].get("engine", {})
            for field in COUNTER_FIELDS:
                if field not in base_engine or field not in cur_engine:
                    continue
                base_v = base_engine[field]
                cur_v = cur_engine[field]
                limit = base_v * (1.0 + args.counter_tolerance) + args.counter_slack
                if cur_v > limit:
                    regressions += 1
                    print(
                        f"  REGRESSION  {fmt_key(key)}: engine.{field} "
                        f"{base_v} -> {cur_v} (limit {limit:.0f})"
                    )

    if regressions:
        print(f"\n{regressions} regression(s) beyond tolerance")
        return 1
    print("\nno regressions beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
