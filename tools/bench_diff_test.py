#!/usr/bin/env python3
"""Unit tests for tools/bench_diff.py -- the CI perf gate.

The gate's failure modes are the point: a comparison that silently skips
a dropped counter, or treats a NaN rate as "no regression", is worse
than no gate at all. Each test builds a pair of tiny BENCH artifacts in
temp directories and asserts on bench_diff's exit status and output.

Run directly (python3 tools/bench_diff_test.py) or under any unittest
runner; CI runs it next to the real bench_diff invocation.
"""

import json
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

BENCH_DIFF = Path(__file__).resolve().parent / "bench_diff.py"


def artifact(rate=100000.0, counter=42, recovery=7, recovered=True,
             latency_p99=None, mean_latency_p99=None, policy=None):
    """One minimal BENCH artifact with a single cell and a single run.

    latency_p99 / mean_latency_p99 add the degraded-mode grant-latency
    percentile fields (run-level and aggregate-level); policy adds the
    resilience-policy axis label to both records.
    """
    cell = {
        "topology": "tree:line(n=8)",
        "features": "full",
        "k": 1,
        "l": 2,
        "n": 8,
        "total_events_per_sec": rate,
        "mean_wall_seconds": 0.001,
    }
    run = {
        "topology": "tree:line(n=8)",
        "features": "full",
        "k": 1,
        "l": 2,
        "seed": 1,
        "recovered": recovered,
        "recovery_events": recovery,
        "engine": {
            "callback_slots_created": counter,
            "in_flight_walks": counter,
            "overflow_pushes": 0,
        },
    }
    if latency_p99 is not None:
        run["grant_latency_p50"] = latency_p99 / 4
        run["grant_latency_p99"] = latency_p99
        run["grant_latency_p999"] = latency_p99 * 2
    if mean_latency_p99 is not None:
        cell["mean_grant_latency_p50"] = mean_latency_p99 / 4
        cell["mean_grant_latency_p99"] = mean_latency_p99
        cell["mean_grant_latency_p999"] = mean_latency_p99 * 2
    if policy is not None:
        cell["policy"] = policy
        run["policy"] = policy
    return {"scenario": "unit", "aggregates": [cell], "runs": [run]}


def run_diff(base, cur, *extra):
    with tempfile.TemporaryDirectory() as tmp:
        base_dir = Path(tmp) / "base"
        cur_dir = Path(tmp) / "cur"
        base_dir.mkdir()
        cur_dir.mkdir()
        (base_dir / "BENCH_unit.json").write_text(json.dumps(base))
        (cur_dir / "BENCH_unit.json").write_text(json.dumps(cur))
        return subprocess.run(
            [sys.executable, str(BENCH_DIFF), str(base_dir), str(cur_dir),
             *extra],
            capture_output=True,
            text=True,
        )


class BenchDiffTest(unittest.TestCase):
    def test_identical_artifacts_pass(self):
        result = run_diff(artifact(), artifact())
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("no regressions", result.stdout)

    def test_rate_drop_beyond_tolerance_fails(self):
        result = run_diff(artifact(rate=100000.0), artifact(rate=50000.0))
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("REGRESSION", result.stdout)

    def test_counter_growth_beyond_tolerance_fails(self):
        result = run_diff(artifact(counter=100), artifact(counter=200))
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("REGRESSION", result.stdout)

    def test_nan_rate_is_a_data_error(self):
        cur = artifact()
        cur["aggregates"][0]["total_events_per_sec"] = float("nan")
        result = run_diff(artifact(), cur)
        self.assertEqual(result.returncode, 2, result.stdout + result.stderr)
        self.assertIn("not a finite number", result.stderr)

    def test_nan_counter_is_a_data_error(self):
        cur = artifact()
        cur["runs"][0]["engine"]["in_flight_walks"] = float("nan")
        result = run_diff(artifact(), cur)
        self.assertEqual(result.returncode, 2, result.stdout + result.stderr)
        self.assertIn("not a finite number", result.stderr)

    def test_counter_dropped_from_current_fails(self):
        cur = artifact()
        del cur["runs"][0]["engine"]["in_flight_walks"]
        result = run_diff(artifact(), cur)
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("absent from current", result.stdout)

    def test_counter_new_in_current_is_noted_not_failed(self):
        base = artifact()
        del base["runs"][0]["engine"]["in_flight_walks"]
        result = run_diff(base, artifact())
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("absent from baseline; skipped", result.stdout)

    def test_missing_baseline_cell_fails(self):
        cur = artifact()
        cur["aggregates"] = []
        cur["runs"] = []
        result = run_diff(artifact(), cur)
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("missing from current", result.stdout)

    def test_lost_recovery_fails(self):
        result = run_diff(artifact(recovered=True),
                          artifact(recovered=False))
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("recovered", result.stdout)

    def test_identical_latency_percentiles_pass(self):
        base = artifact(latency_p99=4000.0, mean_latency_p99=4000.0,
                        policy="drop2/resilient")
        cur = artifact(latency_p99=4000.0, mean_latency_p99=4000.0,
                       policy="drop2/resilient")
        result = run_diff(base, cur)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("no regressions", result.stdout)

    def test_run_latency_growth_beyond_tolerance_fails(self):
        result = run_diff(artifact(latency_p99=4000.0),
                          artifact(latency_p99=9000.0))
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("grant_latency_p99", result.stdout)
        self.assertIn("REGRESSION", result.stdout)

    def test_aggregate_latency_growth_beyond_tolerance_fails(self):
        result = run_diff(artifact(mean_latency_p99=4000.0),
                          artifact(mean_latency_p99=9000.0))
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("mean_grant_latency_p99", result.stdout)
        self.assertIn("REGRESSION", result.stdout)

    def test_latency_percentile_dropped_from_current_fails(self):
        # The degraded-mode satellite's pinned failure mode: a percentile
        # present in the baseline but missing from the current artifact
        # must fail loudly, not read as "the tail is fine".
        base = artifact(latency_p99=4000.0)
        cur = artifact(latency_p99=4000.0)
        del cur["runs"][0]["grant_latency_p99"]
        result = run_diff(base, cur)
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("grant_latency_p99", result.stdout)
        self.assertIn("absent from current", result.stdout)

    def test_aggregate_latency_dropped_from_current_fails(self):
        base = artifact(mean_latency_p99=4000.0)
        cur = artifact(mean_latency_p99=4000.0)
        del cur["aggregates"][0]["mean_grant_latency_p99"]
        result = run_diff(base, cur)
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("mean_grant_latency_p99", result.stdout)
        self.assertIn("absent from current", result.stdout)

    def test_latency_new_in_current_is_noted_not_failed(self):
        result = run_diff(artifact(), artifact(latency_p99=4000.0,
                                               mean_latency_p99=4000.0))
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("absent from baseline; skipped", result.stdout)

    def test_policy_cell_dropped_from_current_fails(self):
        # The policy label joins the cell key: a current artifact that
        # loses the policy axis (or renames a variant) must fail coverage
        # rather than silently comparing mismatched cells.
        base = artifact(policy="drop2/resilient")
        cur = artifact(policy="drop2/none")
        result = run_diff(base, cur)
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("policy=drop2/resilient", result.stdout)
        self.assertIn("missing from current", result.stdout)


if __name__ == "__main__":
    unittest.main()
