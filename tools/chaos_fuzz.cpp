// chaos_fuzz -- deterministic chaos-campaign fuzzer CLI.
//
// Samples adversarial-channel burst configs over small trees, runs each
// through the full runner pipeline with continuous invariant monitoring,
// and delta-debugs every failure down to a minimal reproducer (see
// src/exp/chaos_fuzz.hpp). The whole campaign is a pure function of
// --seed, so CI can pin a bounded smoke campaign.
//
// Usage:
//   chaos_fuzz [--cases N] [--seed S] [--out DIR] [--no-minimize]
//              [--replay INDEX] [--expect-failures N]
//
// Outputs into DIR (default "."):
//   CHAOS_fuzz.json            -- campaign summary (per-failure metadata)
//   CHAOS_repro_<case>.json    -- replayable minimized ScenarioSpec per
//                                 failing case (write_scenario_json)
//
// --replay INDEX re-runs one sampled case by index and reports its
// classification (how a minimized reproducer's provenance is checked).
// --expect-failures N exits nonzero unless at least N failures were
// found -- the CI smoke assertion that the fuzzer still catches anything.
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "exp/chaos_fuzz.hpp"
#include "exp/runner.hpp"

namespace {

std::uint64_t parse_u64(const char* text) {
  return static_cast<std::uint64_t>(std::strtoull(text, nullptr, 10));
}

}  // namespace

int main(int argc, char** argv) {
  klex::exp::ChaosFuzzConfig config;
  std::string out_dir = ".";
  int replay_index = -1;
  int expect_failures = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--cases") == 0) {
      config.cases = std::atoi(next());
    } else if (std::strcmp(arg, "--seed") == 0) {
      config.seed = parse_u64(next());
    } else if (std::strcmp(arg, "--out") == 0) {
      out_dir = next();
    } else if (std::strcmp(arg, "--no-minimize") == 0) {
      config.minimize = false;
    } else if (std::strcmp(arg, "--replay") == 0) {
      replay_index = std::atoi(next());
    } else if (std::strcmp(arg, "--expect-failures") == 0) {
      expect_failures = std::atoi(next());
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }
  // Stall watchdog on for every case: grant stalls during the burst are
  // part of the campaign's observability, not just safety violations.
  // ~100x the quiet-network grant latency on the sampled trees, and small
  // enough to actually fire inside a case's horizon + recovery window.
  config.stall_threshold = 25'000;

  if (replay_index >= 0) {
    klex::exp::ScenarioSpec spec =
        klex::exp::make_chaos_case(config, replay_index);
    auto points = klex::exp::ExperimentRunner::expand(spec);
    klex::exp::RunResult result =
        klex::exp::ExperimentRunner::run_point(spec, points.front());
    const std::string reason = klex::exp::classify_chaos_failure(result);
    std::cout << "case " << replay_index << ": "
              << (reason.empty() ? "pass" : reason)
              << " (fault_phase_violations=" << result.fault_phase_violations
              << ", recovered=" << (result.recovered ? "yes" : "no")
              << ", stalls=" << result.liveness_stalls << ")\n";
    return 0;
  }

  klex::exp::ChaosFuzzReport report = klex::exp::run_chaos_fuzz(config);

  const std::string summary_path = out_dir + "/CHAOS_fuzz.json";
  std::ofstream summary(summary_path);
  if (!summary.good()) {
    std::cerr << "cannot open " << summary_path << " for writing\n";
    return 1;
  }
  klex::exp::write_chaos_fuzz_json(summary, config, report);

  for (const klex::exp::ChaosFailure& failure : report.failures) {
    const std::string path = out_dir + "/CHAOS_repro_" +
                             std::to_string(failure.case_index) + ".json";
    std::ofstream repro(path);
    if (!repro.good()) {
      std::cerr << "cannot open " << path << " for writing\n";
      return 1;
    }
    klex::exp::write_scenario_json(repro, failure.minimized);
    std::cout << "case " << failure.case_index << ": " << failure.reason
              << " (violations=" << failure.violations << ", shrink_steps="
              << failure.shrink_steps << ", shrink_runs="
              << failure.shrink_runs << ") -> " << path << "\n";
  }
  std::cout << report.cases_run << " cases, " << report.failures.size()
            << " failures -> " << summary_path << "\n";

  if (expect_failures > 0 &&
      static_cast<int>(report.failures.size()) < expect_failures) {
    std::cerr << "expected at least " << expect_failures
              << " failures, found " << report.failures.size() << "\n";
    return 1;
  }
  return 0;
}
